#include "graph/lines.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "support/assert.hpp"

namespace columbia::graph {

index_t LineSet::longest() const {
  std::size_t m = 0;
  for (const auto& l : lines) m = std::max(m, l.size());
  return index_t(m);
}

index_t LineSet::vertices_in_lines() const {
  std::size_t n = 0;
  for (const auto& l : lines)
    if (l.size() >= 2) n += l.size();
  return index_t(n);
}

namespace {

/// Strongest unassigned neighbor of v, provided (a) the node is
/// anisotropic — strongest/weakest coupling exceeds `threshold` (the
/// stretching-ratio criterion of the line-creation algorithm) — and (b)
/// the edge is within a factor two of the strongest coupling at v, so
/// lines follow the stiff direction and terminate instead of snaking
/// sideways along the wall.
index_t strong_next(const Csr& g, index_t v, const std::vector<bool>& assigned,
                    real_t threshold, index_t exclude) {
  const auto nbrs = g.neighbors(v);
  const auto ws = g.edge_weights(v);
  if (ws.empty()) return kInvalidIndex;  // unweighted graph: no anisotropy
  real_t weakest = ws[0], strongest = ws[0];
  for (real_t w : ws) {
    weakest = std::min(weakest, w);
    strongest = std::max(strongest, w);
  }
  if (weakest <= 0 || strongest < threshold * weakest) return kInvalidIndex;
  index_t best = kInvalidIndex;
  real_t best_w = 0.5 * strongest;
  for (std::size_t k = 0; k < nbrs.size(); ++k) {
    const index_t u = nbrs[k];
    if (u == exclude || assigned[std::size_t(u)]) continue;
    if (ws[k] > best_w) {
      best_w = ws[k];
      best = u;
    }
  }
  return best;
}

}  // namespace

LineSet extract_lines(const Csr& g, const LineOptions& opt) {
  const index_t n = g.num_vertices();
  LineSet ls;
  std::vector<bool> assigned(std::size_t(n), false);

  // Seed order: strongest-coupled vertices first (max edge weight), so lines
  // start at the wall where stretching is largest.
  std::vector<real_t> strength(std::size_t(n), 0.0);
  for (index_t v = 0; v < n; ++v)
    for (real_t w : g.edge_weights(v))
      strength[std::size_t(v)] = std::max(strength[std::size_t(v)], w);
  std::vector<index_t> order(std::size_t(n), 0);
  std::iota(order.begin(), order.end(), index_t(0));
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return strength[std::size_t(a)] > strength[std::size_t(b)];
  });

  for (index_t seed : order) {
    if (assigned[std::size_t(seed)]) continue;
    assigned[std::size_t(seed)] = true;
    std::vector<index_t> line{seed};

    // Grow forward from the seed, then backward from the seed's other side,
    // following the strongest sufficiently-anisotropic unclaimed edge.
    for (int dir = 0; dir < 2; ++dir) {
      index_t tail = dir == 0 ? line.back() : line.front();
      index_t came_from = kInvalidIndex;
      while (true) {
        const index_t nxt = strong_next(g, tail, assigned,
                                        opt.anisotropy_threshold, came_from);
        if (nxt == kInvalidIndex) break;
        assigned[std::size_t(nxt)] = true;
        if (dir == 0)
          line.push_back(nxt);
        else
          line.insert(line.begin(), nxt);
        came_from = tail;
        tail = nxt;
      }
    }
    ls.lines.push_back(std::move(line));
  }
  return ls;
}

ContractedGraph contract_lines(const Csr& g, const LineSet& ls) {
  const index_t n = g.num_vertices();
  ContractedGraph cg;
  cg.vertex_to_line.assign(std::size_t(n), kInvalidIndex);
  for (std::size_t li = 0; li < ls.lines.size(); ++li)
    for (index_t v : ls.lines[li]) {
      COLUMBIA_REQUIRE(cg.vertex_to_line[std::size_t(v)] == kInvalidIndex);
      cg.vertex_to_line[std::size_t(v)] = index_t(li);
    }
  for (index_t v = 0; v < n; ++v)
    COLUMBIA_REQUIRE(cg.vertex_to_line[std::size_t(v)] != kInvalidIndex);

  std::unordered_map<std::uint64_t, real_t> acc;
  for (index_t v = 0; v < n; ++v) {
    const index_t lv = cg.vertex_to_line[std::size_t(v)];
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (nbrs[k] <= v) continue;
      const index_t lu = cg.vertex_to_line[std::size_t(nbrs[k])];
      if (lu == lv) continue;
      const index_t lo = std::min(lv, lu), hi = std::max(lv, lu);
      const std::uint64_t key =
          (std::uint64_t(std::uint32_t(lo)) << 32) | std::uint32_t(hi);
      acc[key] += ws.empty() ? 1.0 : ws[k];
    }
  }
  std::vector<std::pair<index_t, index_t>> edges;
  std::vector<real_t> w;
  for (const auto& [key, weight] : acc) {
    edges.emplace_back(index_t(key >> 32), index_t(key & 0xffffffffu));
    w.push_back(weight);
  }
  cg.graph =
      Csr::from_weighted_edges(index_t(ls.lines.size()), edges, w);
  std::vector<real_t> vw(ls.lines.size());
  for (std::size_t li = 0; li < ls.lines.size(); ++li)
    vw[li] = real_t(ls.lines[li].size());
  cg.graph.set_vertex_weights(std::move(vw));
  return cg;
}

std::vector<index_t> expand_line_partition(const ContractedGraph& cg,
                                           std::span<const index_t> line_part) {
  std::vector<index_t> part(cg.vertex_to_line.size());
  for (std::size_t v = 0; v < part.size(); ++v)
    part[v] = line_part[std::size_t(cg.vertex_to_line[v])];
  return part;
}

std::vector<std::vector<index_t>> group_lines_for_vectorization(
    const LineSet& ls, index_t group_size) {
  COLUMBIA_REQUIRE(group_size >= 1);
  std::vector<index_t> idx(ls.lines.size());
  std::iota(idx.begin(), idx.end(), index_t(0));
  std::stable_sort(idx.begin(), idx.end(), [&](index_t a, index_t b) {
    return ls.lines[std::size_t(a)].size() > ls.lines[std::size_t(b)].size();
  });
  std::vector<std::vector<index_t>> groups;
  for (std::size_t i = 0; i < idx.size(); i += std::size_t(group_size)) {
    const std::size_t end = std::min(idx.size(), i + std::size_t(group_size));
    groups.emplace_back(idx.begin() + long(i), idx.begin() + long(end));
  }
  return groups;
}

}  // namespace columbia::graph
