// Agglomeration coarsening for the multigrid hierarchy.
//
// The agglomeration multigrid of NSU3D groups neighboring fine-grid control
// volumes around a seed point into larger coarse control volumes (paper
// Fig. 2), recursively, producing the full sequence of coarse levels
// (Fig. 3). Each coarse level is itself a graph, so the procedure nests.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace columbia::graph {

struct Agglomeration {
  /// Coarse-level adjacency: vertices are agglomerated control volumes,
  /// edges connect agglomerates that share a fine edge; edge weight is the
  /// summed fine edge weight across the shared boundary.
  Csr coarse;
  /// fine_to_coarse[v] = agglomerate containing fine vertex v.
  std::vector<index_t> fine_to_coarse;

  real_t coarsening_ratio() const {
    return coarse.num_vertices() == 0
               ? 0.0
               : real_t(fine_to_coarse.size()) / real_t(coarse.num_vertices());
  }
};

/// One agglomeration sweep. Seeds are visited in a boundary-first order (the
/// `priority` span, higher first; pass {} for natural order); each unclaimed
/// seed claims itself plus all currently unclaimed neighbors.
Agglomeration agglomerate(const Csr& g, std::span<const real_t> priority = {});

/// Relabels coarse-level partition ids so each coarse part maximally
/// overlaps the fine part with the same id (paper Sec. III: coarse and fine
/// grid partitions "matched up together based on the degree of overlap...
/// using a non-optimal greedy-type algorithm"). Returns the relabeled
/// coarse partition vector.
std::vector<index_t> match_partitions(std::span<const index_t> fine_part,
                                      std::span<const index_t> fine_to_coarse,
                                      std::span<const index_t> coarse_part,
                                      index_t nparts);

/// Fraction of fine vertices whose coarse agglomerate lives on the same
/// partition (1.0 = perfectly nested partitions; the paper's approach is
/// deliberately non-nested).
real_t partition_overlap(std::span<const index_t> fine_part,
                         std::span<const index_t> fine_to_coarse,
                         std::span<const index_t> coarse_part);

}  // namespace columbia::graph
