// Greedy graph coloring.
//
// On vector processors NSU3D colors the edge loop so that edges in one color
// touch disjoint vertices and the accumulate-to-points loop vectorizes
// (paper Sec. III). We color the *edge conflict graph* implicitly: two mesh
// edges conflict when they share a vertex.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace columbia::graph {

/// Greedy first-fit vertex coloring; returns one color id per vertex.
/// Uses at most max_degree+1 colors.
std::vector<index_t> greedy_color(const Csr& g);

/// Colors mesh edges (given as endpoint pairs over `num_vertices` vertices)
/// so no two edges of the same color share a vertex. Returns per-edge colors.
std::vector<index_t> color_edges(
    index_t num_vertices,
    std::span<const std::pair<index_t, index_t>> edges);

/// Number of distinct colors in a coloring.
index_t num_colors(std::span<const index_t> colors);

/// Color-major traversal order for a coloring: `perm[k]` is the original
/// id of the k-th item after a stable sort by color, and color `c`
/// occupies the contiguous span [offsets[c], offsets[c+1]). Reordering
/// edge arrays with `perm` makes every color a contiguous, race-free span
/// for the threaded scatter loops.
struct ColorOrder {
  std::vector<index_t> perm;         // new position -> original id
  std::vector<std::size_t> offsets;  // size num_colors + 1
};
ColorOrder color_major_order(std::span<const index_t> colors);

}  // namespace columbia::graph
