// Implicit-line extraction and line-contracted partitioning graphs.
//
// In highly stretched boundary-layer regions NSU3D groups the edges that
// connect closely coupled points (the wall-normal direction) into a set of
// non-intersecting lines and solves implicitly along each line (paper
// Sec. III, Fig. 5). For partitioning, each line is contracted to a single
// weighted vertex so METIS never breaks a line (Fig. 6b). For vector
// processors, lines are sorted by length and grouped into batches of 64.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace columbia::graph {

/// A decomposition of all vertices into vertex-disjoint simple paths.
/// Isotropic vertices appear as singleton lines ("the line structure
/// reduces to a single point" — paper Sec. III).
struct LineSet {
  std::vector<std::vector<index_t>> lines;

  index_t num_lines() const { return index_t(lines.size()); }
  index_t longest() const;
  /// Number of vertices that sit in lines of length >= 2.
  index_t vertices_in_lines() const;
};

struct LineOptions {
  /// An edge participates in a line only when its coupling weight exceeds
  /// `anisotropy_threshold` times the mean weight at both endpoints.
  real_t anisotropy_threshold = 2.0;
};

/// Extracts lines by following the strongest mutually-agreeing edges.
/// `g` must carry edge weights encoding coupling strength (for a mesh,
/// inverse edge length or face-area/distance ratio).
LineSet extract_lines(const Csr& g, const LineOptions& opt = {});

struct ContractedGraph {
  /// One vertex per line; vertex weight = line length, edge weights =
  /// summed inter-line couplings (paper Fig. 6b).
  Csr graph;
  /// vertex_to_line[v] = index of the line containing v.
  std::vector<index_t> vertex_to_line;
};

/// Contracts each line of `ls` to a single weighted vertex of a new graph.
ContractedGraph contract_lines(const Csr& g, const LineSet& ls);

/// Expands a partition of the contracted graph back to the vertices;
/// guarantees every line lands wholly inside one part.
std::vector<index_t> expand_line_partition(
    const ContractedGraph& cg, std::span<const index_t> line_part);

/// Sorts lines by decreasing length and groups them into batches of
/// `group_size` (64 in the paper) for vectorized line solves. Returns
/// indices into ls.lines, batch by batch.
std::vector<std::vector<index_t>> group_lines_for_vectorization(
    const LineSet& ls, index_t group_size = 64);

}  // namespace columbia::graph
