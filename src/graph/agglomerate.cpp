#include "graph/agglomerate.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "support/assert.hpp"

namespace columbia::graph {

Agglomeration agglomerate(const Csr& g, std::span<const real_t> priority) {
  const index_t n = g.num_vertices();
  COLUMBIA_REQUIRE(priority.empty() || index_t(priority.size()) == n);

  std::vector<index_t> order(std::size_t(n), 0);
  std::iota(order.begin(), order.end(), index_t(0));
  if (!priority.empty()) {
    std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
      return priority[std::size_t(a)] > priority[std::size_t(b)];
    });
  }

  // Each unclaimed seed claims its unclaimed distance-<=2 neighborhood.
  // Distance-2 agglomeration yields level-to-level size ratios near the
  // paper's hierarchy (72M -> 9M -> 1M points, ratio ~8; Sec. VI).
  std::vector<index_t> map(std::size_t(n), kInvalidIndex);
  index_t nc = 0;
  for (index_t seed : order) {
    if (map[std::size_t(seed)] != kInvalidIndex) continue;
    map[std::size_t(seed)] = nc;
    for (index_t u : g.neighbors(seed)) {
      if (map[std::size_t(u)] == kInvalidIndex) map[std::size_t(u)] = nc;
      if (map[std::size_t(u)] != nc) continue;
      for (index_t w : g.neighbors(u))
        if (map[std::size_t(w)] == kInvalidIndex) map[std::size_t(w)] = nc;
    }
    ++nc;
  }

  // Absorb singleton agglomerates into a neighboring agglomerate: isolated
  // coarse points cost multigrid efficiency for no coverage gain.
  {
    std::vector<index_t> size(std::size_t(nc), 0);
    for (index_t v = 0; v < n; ++v) ++size[std::size_t(map[std::size_t(v)])];
    std::vector<index_t> relabel(std::size_t(nc), kInvalidIndex);
    for (index_t v = 0; v < n; ++v) {
      const index_t c = map[std::size_t(v)];
      if (size[std::size_t(c)] != 1) continue;
      for (index_t u : g.neighbors(v)) {
        const index_t cu = map[std::size_t(u)];
        if (cu != c && size[std::size_t(cu)] > 1) {
          map[std::size_t(v)] = cu;
          size[std::size_t(c)] = 0;
          ++size[std::size_t(cu)];
          break;
        }
      }
    }
    // Compact ids after absorption.
    index_t next = 0;
    for (index_t c = 0; c < nc; ++c)
      if (size[std::size_t(c)] > 0) relabel[std::size_t(c)] = next++;
    for (index_t v = 0; v < n; ++v)
      map[std::size_t(v)] = relabel[std::size_t(map[std::size_t(v)])];
    nc = next;
  }

  // Coarse graph with accumulated boundary weights.
  std::unordered_map<std::uint64_t, real_t> acc;
  for (index_t v = 0; v < n; ++v) {
    const index_t cv = map[std::size_t(v)];
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (nbrs[k] <= v) continue;
      const index_t cu = map[std::size_t(nbrs[k])];
      if (cu == cv) continue;
      const index_t lo = std::min(cv, cu), hi = std::max(cv, cu);
      const std::uint64_t key =
          (std::uint64_t(std::uint32_t(lo)) << 32) | std::uint32_t(hi);
      acc[key] += ws.empty() ? 1.0 : ws[k];
    }
  }
  std::vector<std::pair<index_t, index_t>> edges;
  std::vector<real_t> w;
  edges.reserve(acc.size());
  for (const auto& [key, weight] : acc) {
    edges.emplace_back(index_t(key >> 32), index_t(key & 0xffffffffu));
    w.push_back(weight);
  }

  Agglomeration out;
  out.coarse = Csr::from_weighted_edges(nc, edges, w);
  // Coarse vertex weight = number of fine vertices agglomerated (work proxy).
  std::vector<real_t> vw(std::size_t(nc), 0.0);
  for (index_t v = 0; v < n; ++v)
    vw[std::size_t(map[std::size_t(v)])] += g.vertex_weight(v);
  out.coarse.set_vertex_weights(std::move(vw));
  out.fine_to_coarse = std::move(map);
  return out;
}

std::vector<index_t> match_partitions(std::span<const index_t> fine_part,
                                      std::span<const index_t> fine_to_coarse,
                                      std::span<const index_t> coarse_part,
                                      index_t nparts) {
  COLUMBIA_REQUIRE(fine_part.size() == fine_to_coarse.size());

  // overlap[cp][fp] = number of fine vertices in coarse part cp whose fine
  // part is fp. Sparse accumulation keeps this O(n).
  std::vector<std::unordered_map<index_t, index_t>> overlap(
      std::size_t(nparts), std::unordered_map<index_t, index_t>{});
  for (std::size_t v = 0; v < fine_part.size(); ++v) {
    const index_t cp = coarse_part[std::size_t(fine_to_coarse[v])];
    overlap[std::size_t(cp)][fine_part[v]]++;
  }

  // Greedy: repeatedly take the largest remaining (cp, fp) overlap and bind
  // coarse part cp to label fp, until every coarse part is labeled.
  struct Cand {
    index_t count, cp, fp;
  };
  std::vector<Cand> cands;
  for (index_t cp = 0; cp < nparts; ++cp)
    for (const auto& [fp, cnt] : overlap[std::size_t(cp)])
      cands.push_back({cnt, cp, fp});
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.cp != b.cp) return a.cp < b.cp;
    return a.fp < b.fp;
  });

  std::vector<index_t> relabel(std::size_t(nparts), kInvalidIndex);
  std::vector<bool> label_used(std::size_t(nparts), false);
  for (const Cand& c : cands) {
    if (relabel[std::size_t(c.cp)] != kInvalidIndex ||
        label_used[std::size_t(c.fp)])
      continue;
    relabel[std::size_t(c.cp)] = c.fp;
    label_used[std::size_t(c.fp)] = true;
  }
  // Unbound coarse parts take any free label.
  index_t next = 0;
  for (index_t cp = 0; cp < nparts; ++cp) {
    if (relabel[std::size_t(cp)] != kInvalidIndex) continue;
    while (label_used[std::size_t(next)]) ++next;
    relabel[std::size_t(cp)] = next;
    label_used[std::size_t(next)] = true;
  }

  std::vector<index_t> out(coarse_part.size());
  for (std::size_t c = 0; c < coarse_part.size(); ++c)
    out[c] = relabel[std::size_t(coarse_part[c])];
  return out;
}

real_t partition_overlap(std::span<const index_t> fine_part,
                         std::span<const index_t> fine_to_coarse,
                         std::span<const index_t> coarse_part) {
  COLUMBIA_REQUIRE(fine_part.size() == fine_to_coarse.size());
  if (fine_part.empty()) return 1.0;
  std::size_t same = 0;
  for (std::size_t v = 0; v < fine_part.size(); ++v)
    if (coarse_part[std::size_t(fine_to_coarse[v])] == fine_part[v]) ++same;
  return real_t(same) / real_t(fine_part.size());
}

}  // namespace columbia::graph
