#include "graph/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "support/assert.hpp"
#include "support/random.hpp"

namespace columbia::graph {

namespace {

struct CoarseLevel {
  Csr graph;
  std::vector<index_t> fine_to_coarse;
};

/// Heavy-edge matching: visit vertices in random order, match each unmatched
/// vertex with its unmatched neighbor of maximum edge weight.
CoarseLevel coarsen_once(const Csr& g, Xoshiro256& rng) {
  const index_t n = g.num_vertices();
  std::vector<index_t> match(std::size_t(n), kInvalidIndex);
  std::vector<index_t> visit(std::size_t(n), 0);
  std::iota(visit.begin(), visit.end(), index_t(0));
  for (index_t i = n - 1; i > 0; --i)
    std::swap(visit[std::size_t(i)],
              visit[std::size_t(rng.below(std::uint64_t(i) + 1))]);

  for (index_t v : visit) {
    if (match[std::size_t(v)] != kInvalidIndex) continue;
    index_t best = kInvalidIndex;
    real_t best_w = -1;
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const index_t u = nbrs[k];
      if (match[std::size_t(u)] != kInvalidIndex) continue;
      const real_t w = ws.empty() ? 1.0 : ws[k];
      if (w > best_w) {
        best_w = w;
        best = u;
      }
    }
    if (best == kInvalidIndex) {
      match[std::size_t(v)] = v;  // stays single
    } else {
      match[std::size_t(v)] = best;
      match[std::size_t(best)] = v;
    }
  }

  // Number coarse vertices.
  std::vector<index_t> map(std::size_t(n), kInvalidIndex);
  index_t nc = 0;
  for (index_t v = 0; v < n; ++v) {
    if (map[std::size_t(v)] != kInvalidIndex) continue;
    map[std::size_t(v)] = nc;
    const index_t m = match[std::size_t(v)];
    if (m != v) map[std::size_t(m)] = nc;
    ++nc;
  }

  // Build coarse graph: sum parallel edges, sum vertex weights.
  std::vector<real_t> cvw(std::size_t(nc), 0.0);
  for (index_t v = 0; v < n; ++v)
    cvw[std::size_t(map[std::size_t(v)])] += g.vertex_weight(v);

  std::vector<std::pair<index_t, index_t>> cedges;
  std::vector<real_t> cw;
  std::unordered_map<std::uint64_t, std::size_t> seen;
  for (index_t v = 0; v < n; ++v) {
    const index_t cv = map[std::size_t(v)];
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const index_t cu = map[std::size_t(nbrs[k])];
      if (cu <= cv) continue;  // each undirected coarse edge from one side
      const std::uint64_t key =
          (std::uint64_t(std::uint32_t(cv)) << 32) | std::uint32_t(cu);
      const real_t w = ws.empty() ? 1.0 : ws[k];
      auto [it, inserted] = seen.emplace(key, cedges.size());
      if (inserted) {
        cedges.emplace_back(cv, cu);
        cw.push_back(w);
      } else {
        cw[it->second] += w;
      }
    }
  }

  CoarseLevel lvl;
  lvl.graph = Csr::from_weighted_edges(nc, cedges, cw);
  lvl.graph.set_vertex_weights(std::move(cvw));
  lvl.fine_to_coarse = std::move(map);
  return lvl;
}

std::vector<real_t> part_weights(const Csr& g, std::span<const index_t> part,
                                 index_t nparts) {
  std::vector<real_t> w(std::size_t(nparts), 0.0);
  for (index_t v = 0; v < g.num_vertices(); ++v)
    w[std::size_t(part[std::size_t(v)])] += g.vertex_weight(v);
  return w;
}

/// Region growing from a random unassigned seed until the accumulated
/// weight reaches `target`; assigns `id` to grown vertices. The frontier is
/// a max-heap keyed by connection weight to the region, so strongly coupled
/// vertices are absorbed first and weak seams end up on part boundaries.
void grow_region(const Csr& g, std::vector<index_t>& part, index_t id,
                 real_t target, Xoshiro256& rng) {
  const index_t n = g.num_vertices();
  std::vector<index_t> unassigned;
  for (index_t v = 0; v < n; ++v)
    if (part[std::size_t(v)] == kInvalidIndex) unassigned.push_back(v);
  if (unassigned.empty()) return;
  const index_t seed = unassigned[std::size_t(rng.below(unassigned.size()))];

  using Cand = std::pair<real_t, index_t>;  // (connection weight, vertex)
  std::priority_queue<Cand> frontier;
  auto absorb = [&](index_t v, real_t& grown) {
    part[std::size_t(v)] = id;
    grown += g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (part[std::size_t(nbrs[k])] != kInvalidIndex) continue;
      frontier.push({ws.empty() ? 1.0 : ws[k], nbrs[k]});
    }
  };

  real_t grown = 0;
  absorb(seed, grown);
  std::size_t scan = 0;
  while (grown < target) {
    index_t next = kInvalidIndex;
    while (!frontier.empty()) {
      const index_t v = frontier.top().second;
      frontier.pop();
      if (part[std::size_t(v)] == kInvalidIndex) {
        next = v;
        break;
      }
    }
    if (next == kInvalidIndex) {
      // Disconnected remainder: jump to the next unassigned vertex.
      while (scan < unassigned.size() &&
             part[std::size_t(unassigned[scan])] != kInvalidIndex)
        ++scan;
      if (scan == unassigned.size()) break;
      next = unassigned[scan];
    }
    absorb(next, grown);
  }
}

/// Initial k-way partition by sequential region growing: parts 0..k-2 are
/// grown to the ideal weight; the remainder becomes part k-1.
std::vector<index_t> initial_partition(const Csr& g, index_t nparts,
                                       Xoshiro256& rng) {
  const index_t n = g.num_vertices();
  std::vector<index_t> part(std::size_t(n), kInvalidIndex);
  const real_t ideal = g.total_vertex_weight() / real_t(nparts);
  for (index_t p = 0; p + 1 < nparts; ++p) grow_region(g, part, p, ideal, rng);
  for (index_t v = 0; v < n; ++v)
    if (part[std::size_t(v)] == kInvalidIndex)
      part[std::size_t(v)] = nparts - 1;
  return part;
}

/// Boundary greedy refinement: move boundary vertices to the neighboring
/// part with the largest positive gain, subject to the balance constraint.
void refine(const Csr& g, std::vector<index_t>& part, index_t nparts,
            const PartitionOptions& opt) {
  const index_t n = g.num_vertices();
  std::vector<real_t> pw = part_weights(g, part, nparts);
  const real_t ideal = g.total_vertex_weight() / real_t(nparts);
  const real_t max_w = ideal * (1.0 + opt.imbalance);

  std::vector<real_t> gain(std::size_t(nparts), 0.0);
  for (int pass = 0; pass < opt.refine_passes; ++pass) {
    bool moved = false;
    for (index_t v = 0; v < n; ++v) {
      const index_t pv = part[std::size_t(v)];
      const auto nbrs = g.neighbors(v);
      const auto ws = g.edge_weights(v);
      bool boundary = false;
      for (index_t u : nbrs)
        if (part[std::size_t(u)] != pv) {
          boundary = true;
          break;
        }
      if (!boundary) continue;

      // Gain of moving v from pv to q: (edges to q) - (edges to pv).
      std::fill(gain.begin(), gain.end(), 0.0);
      real_t internal = 0;
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const real_t w = ws.empty() ? 1.0 : ws[k];
        const index_t pu = part[std::size_t(nbrs[k])];
        if (pu == pv)
          internal += w;
        else
          gain[std::size_t(pu)] += w;
      }
      index_t best_q = kInvalidIndex;
      real_t best_gain = 0;
      const real_t wv = g.vertex_weight(v);
      for (index_t q = 0; q < nparts; ++q) {
        if (q == pv || gain[std::size_t(q)] == 0.0) continue;
        const real_t net = gain[std::size_t(q)] - internal;
        const bool balance_ok = pw[std::size_t(q)] + wv <= max_w;
        // Accept strictly positive gain, or zero-gain moves that improve
        // balance (helps escape plateaus).
        const bool improves_balance =
            net == 0.0 && pw[std::size_t(pv)] - wv > pw[std::size_t(q)] + wv;
        if (balance_ok && (net > best_gain || (net == 0.0 && best_q == kInvalidIndex && improves_balance))) {
          best_gain = net;
          best_q = q;
        }
      }
      if (best_q != kInvalidIndex) {
        pw[std::size_t(pv)] -= wv;
        pw[std::size_t(best_q)] += wv;
        part[std::size_t(v)] = best_q;
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

std::vector<index_t> partition(const Csr& g, index_t nparts,
                               const PartitionOptions& opt) {
  COLUMBIA_REQUIRE(nparts >= 1);
  const index_t n = g.num_vertices();
  if (nparts == 1) return std::vector<index_t>(std::size_t(n), 0);
  if (n <= nparts) {
    // Degenerate case (paper Sec. VI: coarsest-level partitions may be
    // empty): spread vertices one per part.
    std::vector<index_t> part(std::size_t(n), 0);
    std::iota(part.begin(), part.end(), index_t(0));
    return part;
  }

  Xoshiro256 rng(opt.seed);

  // Coarsening phase.
  std::vector<CoarseLevel> levels;
  const Csr* current = &g;
  const index_t stop_at =
      std::max<index_t>(nparts * opt.coarsen_to_per_part, 64);
  while (current->num_vertices() > stop_at) {
    CoarseLevel lvl = coarsen_once(*current, rng);
    // Stalled coarsening (e.g. star graphs): give up and partition as is.
    if (lvl.graph.num_vertices() > current->num_vertices() * 95 / 100) break;
    levels.push_back(std::move(lvl));
    current = &levels.back().graph;
  }

  // Initial partition on the coarsest graph.
  std::vector<index_t> part = initial_partition(*current, nparts, rng);
  refine(*current, part, nparts, opt);

  // Uncoarsening + refinement.
  for (std::size_t li = levels.size(); li-- > 0;) {
    const Csr& fine = (li == 0) ? g : levels[li - 1].graph;
    const auto& map = levels[li].fine_to_coarse;
    std::vector<index_t> fine_part(std::size_t(fine.num_vertices()));
    for (index_t v = 0; v < fine.num_vertices(); ++v)
      fine_part[std::size_t(v)] = part[std::size_t(map[std::size_t(v)])];
    part = std::move(fine_part);
    refine(fine, part, nparts, opt);
  }

  // Empty-part repair: greedy region growth can exhaust the graph before
  // the last parts seed (overshoot on coarse graphs). Grow each empty part
  // out of the currently heaviest part.
  {
    std::vector<real_t> pw = part_weights(g, part, nparts);
    const real_t ideal = g.total_vertex_weight() / real_t(nparts);
    for (index_t p = 0; p < nparts; ++p) {
      if (pw[std::size_t(p)] > 0) continue;
      const index_t donor = index_t(
          std::max_element(pw.begin(), pw.end()) - pw.begin());
      // BFS a compact chunk of ~ideal weight inside the donor.
      index_t seed = kInvalidIndex;
      for (index_t v = 0; v < n && seed == kInvalidIndex; ++v)
        if (part[std::size_t(v)] == donor) seed = v;
      if (seed == kInvalidIndex) break;
      std::queue<index_t> q;
      q.push(seed);
      part[std::size_t(seed)] = p;
      real_t moved = g.vertex_weight(seed);
      while (!q.empty() && moved < ideal) {
        const index_t v = q.front();
        q.pop();
        for (index_t u : g.neighbors(v)) {
          if (part[std::size_t(u)] != donor) continue;
          part[std::size_t(u)] = p;
          moved += g.vertex_weight(u);
          q.push(u);
          if (moved >= ideal) break;
        }
      }
      pw[std::size_t(donor)] -= moved;
      pw[std::size_t(p)] += moved;
    }
    refine(g, part, nparts, opt);
  }
  return part;
}

PartitionQuality evaluate_partition(const Csr& g,
                                    std::span<const index_t> part,
                                    index_t nparts) {
  COLUMBIA_REQUIRE(index_t(part.size()) == g.num_vertices());
  PartitionQuality q;
  std::vector<real_t> pw(std::size_t(nparts), 0.0);
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    pw[std::size_t(part[std::size_t(v)])] += g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (nbrs[k] > v && part[std::size_t(nbrs[k])] != part[std::size_t(v)])
        q.edge_cut += ws.empty() ? 1.0 : ws[k];
    }
  }
  const real_t ideal = g.total_vertex_weight() / real_t(nparts);
  real_t max_w = 0;
  for (real_t w : pw) {
    max_w = std::max(max_w, w);
    if (w > 0) ++q.nonempty_parts;
  }
  q.imbalance = ideal > 0 ? max_w / ideal - 1.0 : 0.0;
  return q;
}

Csr communication_graph(const Csr& g, std::span<const index_t> part,
                        index_t nparts) {
  std::unordered_map<std::uint64_t, real_t> cut;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const index_t pv = part[std::size_t(v)];
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const index_t u = nbrs[k];
      if (u <= v) continue;
      const index_t pu = part[std::size_t(u)];
      if (pu == pv) continue;
      const index_t lo = std::min(pv, pu), hi = std::max(pv, pu);
      const std::uint64_t key =
          (std::uint64_t(std::uint32_t(lo)) << 32) | std::uint32_t(hi);
      cut[key] += ws.empty() ? 1.0 : ws[k];
    }
  }
  std::vector<std::pair<index_t, index_t>> edges;
  std::vector<real_t> w;
  edges.reserve(cut.size());
  for (const auto& [key, weight] : cut) {
    edges.emplace_back(index_t(key >> 32), index_t(key & 0xffffffffu));
    w.push_back(weight);
  }
  return Csr::from_weighted_edges(nparts, edges, w);
}

}  // namespace columbia::graph
