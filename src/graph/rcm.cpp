#include "graph/rcm.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"

namespace columbia::graph {

std::vector<index_t> reverse_cuthill_mckee(const Csr& g) {
  const index_t n = g.num_vertices();
  std::vector<index_t> order;
  order.reserve(std::size_t(n));
  std::vector<bool> visited(std::size_t(n), false);

  // Vertices sorted by degree: component restarts pick the lowest-degree
  // unvisited vertex, the classic pseudo-peripheral heuristic.
  std::vector<index_t> by_degree(std::size_t(n), 0);
  for (index_t i = 0; i < n; ++i) by_degree[std::size_t(i)] = i;
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](index_t a, index_t b) { return g.degree(a) < g.degree(b); });

  std::vector<index_t> nbr_buf;
  std::size_t scan = 0;
  while (index_t(order.size()) < n) {
    while (visited[std::size_t(by_degree[scan])]) ++scan;
    const index_t root = by_degree[scan];
    visited[std::size_t(root)] = true;
    std::queue<index_t> q;
    q.push(root);
    while (!q.empty()) {
      const index_t v = q.front();
      q.pop();
      order.push_back(v);
      nbr_buf.clear();
      for (index_t u : g.neighbors(v))
        if (!visited[std::size_t(u)]) {
          visited[std::size_t(u)] = true;
          nbr_buf.push_back(u);
        }
      std::sort(nbr_buf.begin(), nbr_buf.end(), [&](index_t a, index_t b) {
        return g.degree(a) < g.degree(b);
      });
      for (index_t u : nbr_buf) q.push(u);
    }
  }

  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace columbia::graph
