#include "graph/coloring.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace columbia::graph {

std::vector<index_t> greedy_color(const Csr& g) {
  const index_t n = g.num_vertices();
  std::vector<index_t> color(std::size_t(n), kInvalidIndex);
  std::vector<index_t> mark(std::size_t(g.max_degree()) + 1, kInvalidIndex);
  for (index_t v = 0; v < n; ++v) {
    for (index_t u : g.neighbors(v)) {
      const index_t c = color[std::size_t(u)];
      if (c >= 0 && c < index_t(mark.size())) mark[std::size_t(c)] = v;
    }
    index_t c = 0;
    while (c < index_t(mark.size()) && mark[std::size_t(c)] == v) ++c;
    color[std::size_t(v)] = c;
  }
  return color;
}

std::vector<index_t> color_edges(
    index_t num_vertices,
    std::span<const std::pair<index_t, index_t>> edges) {
  // First-fit over edges: per vertex keep the set of colors already used by
  // incident edges, as a bitmask grown on demand.
  std::vector<std::vector<bool>> used(std::size_t(num_vertices),
                                      std::vector<bool>{});
  std::vector<index_t> color(edges.size(), kInvalidIndex);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [a, b] = edges[e];
    COLUMBIA_REQUIRE(a >= 0 && a < num_vertices && b >= 0 && b < num_vertices);
    auto& ua = used[std::size_t(a)];
    auto& ub = used[std::size_t(b)];
    index_t c = 0;
    while (true) {
      const bool a_used = std::size_t(c) < ua.size() && ua[std::size_t(c)];
      const bool b_used = std::size_t(c) < ub.size() && ub[std::size_t(c)];
      if (!a_used && !b_used) break;
      ++c;
    }
    if (std::size_t(c) >= ua.size()) ua.resize(std::size_t(c) + 1, false);
    if (std::size_t(c) >= ub.size()) ub.resize(std::size_t(c) + 1, false);
    ua[std::size_t(c)] = ub[std::size_t(c)] = true;
    color[e] = c;
  }
  return color;
}

index_t num_colors(std::span<const index_t> colors) {
  index_t m = 0;
  for (index_t c : colors) m = std::max(m, c + 1);
  return m;
}

ColorOrder color_major_order(std::span<const index_t> colors) {
  ColorOrder out;
  const std::size_t nc = std::size_t(num_colors(colors));
  out.offsets.assign(nc + 1, 0);
  for (index_t c : colors) ++out.offsets[std::size_t(c) + 1];
  for (std::size_t c = 1; c <= nc; ++c) out.offsets[c] += out.offsets[c - 1];
  // Counting sort: stable within each color, so relative order of a
  // color's items is preserved.
  out.perm.assign(colors.size(), kInvalidIndex);
  std::vector<std::size_t> cursor(out.offsets.begin(), out.offsets.end() - 1);
  for (std::size_t e = 0; e < colors.size(); ++e)
    out.perm[cursor[std::size_t(colors[e])]++] = index_t(e);
  return out;
}

}  // namespace columbia::graph
