// Triangulated surface representation.
//
// Cart3D's geometry "comes into the system as a set of watertight solids"
// that are "automatically triangulated and positioned for the desired
// control surface deflections" (paper Sec. IV). TriSurface is that currency:
// a vertex/triangle soup with component ids, transforms, and a
// watertightness check (every edge shared by exactly two triangles).
#pragma once

#include <span>
#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"
#include "support/types.hpp"

namespace columbia::geom {

struct Triangle {
  index_t v[3];
};

class TriSurface {
 public:
  TriSurface() = default;

  index_t add_vertex(const Vec3& p) {
    vertices_.push_back(p);
    return index_t(vertices_.size()) - 1;
  }
  void add_triangle(index_t a, index_t b, index_t c, index_t component = 0);

  index_t num_vertices() const { return index_t(vertices_.size()); }
  index_t num_triangles() const { return index_t(triangles_.size()); }

  const Vec3& vertex(index_t i) const { return vertices_[std::size_t(i)]; }
  const Triangle& triangle(index_t i) const {
    return triangles_[std::size_t(i)];
  }
  index_t component_of(index_t tri) const {
    return components_[std::size_t(tri)];
  }
  index_t num_components() const;

  std::span<const Vec3> vertices() const { return vertices_; }
  std::span<const Triangle> triangles() const { return triangles_; }

  /// Outward normal scaled by twice the area.
  Vec3 scaled_normal(index_t tri) const;
  real_t area(index_t tri) const { return 0.5 * norm(scaled_normal(tri)); }
  real_t total_area() const;
  Vec3 centroid(index_t tri) const;

  Aabb bounds() const;
  Aabb triangle_bounds(index_t tri) const;

  /// True when every edge is shared by exactly two triangles (a closed,
  /// manifold surface — the "watertight" requirement of the paper).
  bool is_watertight() const;

  /// Appends another surface, remapping its components past ours.
  void append(const TriSurface& other);

  /// Rigid transforms, applied to all vertices.
  void translate(const Vec3& d);
  void scale(real_t s);
  /// Rotates around axis (unit) through `origin` by `angle_rad`.
  void rotate(const Vec3& origin, const Vec3& axis, real_t angle_rad);

  /// Rotates only the vertices with x >= plane_x (used to deflect a control
  /// surface hinged on a constant-x plane in component-local coordinates).
  void rotate_vertices_if(const Vec3& origin, const Vec3& axis,
                          real_t angle_rad, std::span<const index_t> verts);

  /// Signed volume enclosed by the surface (positive when outward-oriented).
  real_t enclosed_volume() const;

 private:
  std::vector<Vec3> vertices_;
  std::vector<Triangle> triangles_;
  std::vector<index_t> components_;
};

}  // namespace columbia::geom
