#include "geom/components.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "support/assert.hpp"

namespace columbia::geom {

namespace {

constexpr real_t kPi = std::numbers::pi_v<real_t>;

/// Stitches a closed tube from `rings` of equal point count, capping both
/// ends with centroid fans. Winding: outward for rings ordered nose->tail
/// and ring points counter-clockwise seen from +x.
TriSurface loft_closed(const std::vector<std::vector<Vec3>>& rings,
                       index_t component = 0) {
  COLUMBIA_REQUIRE(rings.size() >= 2);
  const std::size_t k = rings.front().size();
  for (const auto& r : rings) COLUMBIA_REQUIRE(r.size() == k);

  TriSurface s;
  std::vector<std::vector<index_t>> ids(rings.size());
  for (std::size_t i = 0; i < rings.size(); ++i)
    for (const Vec3& p : rings[i]) ids[i].push_back(s.add_vertex(p));

  for (std::size_t i = 0; i + 1 < rings.size(); ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t jn = (j + 1) % k;
      const index_t a = ids[i][j], b = ids[i][jn];
      const index_t c = ids[i + 1][j], d = ids[i + 1][jn];
      s.add_triangle(a, b, c, component);
      s.add_triangle(b, d, c, component);
    }
  }

  // End caps: fan from the ring centroid. Front cap faces -x-ish
  // (reverse winding), rear cap faces +x-ish.
  auto centroid_of = [&](const std::vector<Vec3>& ring) {
    Vec3 c{};
    for (const Vec3& p : ring) c += p;
    return c / real_t(ring.size());
  };
  const index_t front = s.add_vertex(centroid_of(rings.front()));
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t jn = (j + 1) % k;
    s.add_triangle(front, ids.front()[jn], ids.front()[j], component);
  }
  const index_t back = s.add_vertex(centroid_of(rings.back()));
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t jn = (j + 1) % k;
    s.add_triangle(back, ids.back()[j], ids.back()[jn], component);
  }
  return s;
}

/// Circle of `n` points of radius r in the y-z plane at station x.
std::vector<Vec3> ring_at(real_t x, real_t r, int n) {
  std::vector<Vec3> ring;
  ring.reserve(std::size_t(n));
  for (int j = 0; j < n; ++j) {
    const real_t a = 2 * kPi * real_t(j) / real_t(n);
    ring.push_back({x, r * std::cos(a), r * std::sin(a)});
  }
  return ring;
}

/// NACA-00xx half-thickness with the closed-trailing-edge coefficient.
real_t naca_thickness(real_t t, real_t xbar) {
  const real_t s = std::sqrt(xbar);
  return 5.0 * t *
         (0.2969 * s - 0.1260 * xbar - 0.3516 * xbar * xbar +
          0.2843 * xbar * xbar * xbar - 0.1036 * xbar * xbar * xbar * xbar);
}

/// Closed airfoil loop (chordwise x, thickness z), `k` points, chord 1.
/// Aft-of-hinge points rotate by `flap` about (hinge_x, 0).
std::vector<Vec3> airfoil_loop(real_t thickness, int k, real_t flap,
                               real_t hinge_x = 0.7) {
  std::vector<Vec3> loop;
  loop.reserve(std::size_t(k));
  for (int j = 0; j < k; ++j) {
    const real_t sang = 2 * kPi * real_t(j) / real_t(k);
    const real_t xbar = 0.5 * (1.0 + std::cos(sang));
    real_t z = naca_thickness(thickness, xbar);
    if (sang > kPi) z = -z;
    real_t x = xbar;
    if (flap != 0.0 && xbar > hinge_x) {
      const real_t dx = xbar - hinge_x;
      const real_t c = std::cos(flap), sn = std::sin(flap);
      // Positive deflection = trailing edge down (-z).
      x = hinge_x + dx * c + z * sn;
      z = -dx * sn + z * c;
    }
    loop.push_back({x, 0.0, z});
  }
  return loop;
}

}  // namespace

TriSurface make_sphere(const Vec3& center, real_t radius, int n_theta,
                       int n_phi) {
  COLUMBIA_REQUIRE(n_theta >= 2 && n_phi >= 3);
  // Rings ordered along increasing x (the loft axis), poles closed with
  // tiny rings so the centroid fan caps stay well shaped.
  std::vector<std::vector<Vec3>> rings;
  rings.push_back(ring_at(-radius * std::cos(kPi / real_t(4 * n_theta)),
                          radius * 1e-9, n_phi));
  for (int i = n_theta - 1; i >= 1; --i) {
    const real_t th = kPi * real_t(i) / real_t(n_theta);
    rings.push_back(ring_at(radius * std::cos(th) /* x = pole axis */,
                            radius * std::sin(th), n_phi));
  }
  rings.push_back(ring_at(radius * std::cos(kPi / real_t(4 * n_theta)),
                          radius * 1e-9, n_phi));
  TriSurface s = loft_closed(rings);
  s.translate(center);
  return s;
}

TriSurface make_box(const Vec3& lo, const Vec3& hi) {
  TriSurface s;
  index_t v[8];
  for (int i = 0; i < 8; ++i) {
    v[i] = s.add_vertex({(i & 1) ? hi.x : lo.x, (i & 2) ? hi.y : lo.y,
                         (i & 4) ? hi.z : lo.z});
  }
  auto quad = [&](int a, int b, int c, int d) {
    s.add_triangle(v[a], v[b], v[c]);
    s.add_triangle(v[a], v[c], v[d]);
  };
  quad(0, 2, 3, 1);  // z = lo (normal -z)
  quad(4, 5, 7, 6);  // z = hi (+z)
  quad(0, 1, 5, 4);  // y = lo (-y)
  quad(2, 6, 7, 3);  // y = hi (+y)
  quad(0, 4, 6, 2);  // x = lo (-x)
  quad(1, 3, 7, 5);  // x = hi (+x)
  return s;
}

TriSurface make_body_of_revolution(
    std::span<const std::pair<real_t, real_t>> profile, int n_seg) {
  COLUMBIA_REQUIRE(profile.size() >= 2 && n_seg >= 3);
  std::vector<std::vector<Vec3>> rings;
  for (std::size_t i = 0; i < profile.size(); ++i) {
    const auto [x, r] = profile[i];
    // End stations collapse toward the axis; keep a sliver so the fan cap
    // in loft_closed produces well-shaped triangles.
    const real_t rr = std::max(r, real_t(1e-9));
    rings.push_back(ring_at(x, rr, n_seg));
  }
  return loft_closed(rings);
}

TriSurface make_rocket_body(real_t length, real_t radius, real_t nose_frac,
                            real_t tail_frac, int n_seg, int n_axial) {
  COLUMBIA_REQUIRE(length > 0 && radius > 0);
  COLUMBIA_REQUIRE(nose_frac + tail_frac < 1.0);
  std::vector<std::pair<real_t, real_t>> profile;
  const real_t nose_len = nose_frac * length;
  const real_t tail_len = tail_frac * length;
  for (int i = 0; i <= n_axial; ++i) {
    const real_t x = length * real_t(i) / real_t(n_axial);
    real_t r;
    if (x < nose_len) {
      // Elliptic ogive nose.
      const real_t u = x / nose_len;
      r = radius * std::sqrt(std::max<real_t>(0.0, u * (2.0 - u)));
    } else if (x > length - tail_len) {
      // Conical boat-tail down to 40% radius, then closed by the end cap.
      const real_t u = (length - x) / tail_len;
      r = radius * (0.4 + 0.6 * u);
    } else {
      r = radius;
    }
    profile.emplace_back(x, r);
  }
  profile.front().second = 0.0;
  profile.back().second = 0.0;
  return make_body_of_revolution(profile, n_seg);
}

TriSurface make_wing(const WingSpec& spec) {
  COLUMBIA_REQUIRE(spec.n_span >= 2 && spec.n_chord >= 4);
  const int k = 2 * spec.n_chord;
  std::vector<std::vector<Vec3>> sections;
  for (int i = 0; i <= spec.n_span; ++i) {
    const real_t eta = real_t(i) / real_t(spec.n_span);  // 0..1 across span
    const real_t y = (eta - 0.5) * spec.span;
    const real_t t = std::abs(2.0 * eta - 1.0);          // 0 at root, 1 at tip
    const real_t chord =
        spec.root_chord + (spec.tip_chord - spec.root_chord) * t;
    const real_t x_le = spec.sweep * t;
    std::vector<Vec3> loop =
        airfoil_loop(spec.thickness, k, spec.flap_deflection);
    for (Vec3& p : loop) {
      p.x = x_le + p.x * chord;
      p.z *= chord;
      p.y = y;
    }
    sections.push_back(std::move(loop));
  }
  // loft_closed expects the rings ordered along an axis with CCW-from-+axis
  // orientation; airfoil loops advance clockwise seen from +y, so flip.
  for (auto& sec : sections) std::reverse(sec.begin(), sec.end());
  return loft_closed(sections);
}

TriSurface make_sslv(real_t elevon_deflection_rad, int resolution) {
  COLUMBIA_REQUIRE(resolution >= 1);
  const int r = resolution;
  TriSurface assembly;

  // External tank: the big center body.
  TriSurface et = make_rocket_body(1.0, 0.085, 0.3, 0.05, 20 * r, 20 * r);
  assembly.append(et);

  // Two solid rocket boosters flanking the tank.
  for (int side = -1; side <= 1; side += 2) {
    TriSurface srb = make_rocket_body(0.9, 0.042, 0.2, 0.12, 14 * r, 16 * r);
    srb.translate({0.05, real_t(side) * 0.13, 0.0});
    assembly.append(srb);
  }

  // Orbiter fuselage above the tank.
  TriSurface fus = make_rocket_body(0.55, 0.045, 0.3, 0.2, 14 * r, 14 * r);
  fus.translate({0.25, 0.0, 0.14});
  assembly.append(fus);

  // Orbiter wing with deflected elevons (the config-space parameter).
  WingSpec wing;
  wing.span = 0.42;
  wing.root_chord = 0.28;
  wing.tip_chord = 0.07;
  wing.sweep = 0.14;
  wing.thickness = 0.06;
  wing.flap_deflection = elevon_deflection_rad;
  wing.n_span = 8 * r;
  wing.n_chord = 10 * r;
  TriSurface w = make_wing(wing);
  w.translate({0.42, 0.0, 0.12});
  assembly.append(w);

  // Vertical tail: a half-span wing rotated upright.
  WingSpec tail;
  tail.span = 0.24;
  tail.root_chord = 0.14;
  tail.tip_chord = 0.05;
  tail.sweep = 0.08;
  tail.thickness = 0.08;
  tail.n_span = 4 * r;
  tail.n_chord = 6 * r;
  TriSurface vt = make_wing(tail);
  vt.rotate({0, 0, 0}, {1, 0, 0}, kPi / 2);  // span now along z
  vt.translate({0.66, 0.0, 0.28});
  assembly.append(vt);

  // Fore and aft attach hardware: small boxes between tank and orbiter/SRBs.
  assembly.append(make_box({0.18, -0.012, 0.08}, {0.22, 0.012, 0.115}));
  assembly.append(make_box({0.62, -0.012, 0.08}, {0.68, 0.012, 0.115}));
  assembly.append(make_box({0.45, 0.085, -0.012}, {0.50, 0.132, 0.012}));
  assembly.append(make_box({0.45, -0.132, -0.012}, {0.50, -0.085, 0.012}));

  // Five engines with gimbaling nozzles: three on the orbiter aft, one per
  // booster — short cones.
  auto nozzle = [&](Vec3 at) {
    std::vector<std::pair<real_t, real_t>> prof = {
        {0.0, 0.0}, {0.01, 0.012}, {0.05, 0.022}, {0.06, 0.0}};
    TriSurface n = make_body_of_revolution(prof, 10 * r);
    n.translate(at);
    return n;
  };
  assembly.append(nozzle({0.80, 0.0, 0.16}));
  assembly.append(nozzle({0.80, -0.025, 0.125}));
  assembly.append(nozzle({0.80, 0.025, 0.125}));
  assembly.append(nozzle({0.95, 0.13, 0.0}));
  assembly.append(nozzle({0.95, -0.13, 0.0}));

  return assembly;
}

TriSurface make_transport(bool with_nacelle, int resolution) {
  COLUMBIA_REQUIRE(resolution >= 1);
  const int r = resolution;
  TriSurface assembly;

  // Fuselage.
  TriSurface fus = make_rocket_body(1.0, 0.05, 0.18, 0.28, 16 * r, 20 * r);
  assembly.append(fus);

  // Main wing through the fuselage.
  WingSpec wing;
  wing.span = 0.9;
  wing.root_chord = 0.22;
  wing.tip_chord = 0.08;
  wing.sweep = 0.18;
  wing.thickness = 0.11;
  wing.n_span = 12 * r;
  wing.n_chord = 12 * r;
  TriSurface w = make_wing(wing);
  w.translate({0.38, 0.0, 0.0});
  assembly.append(w);

  if (with_nacelle) {
    // Engine nacelles under each wing (Fig. 13b): stubby closed bodies.
    for (int side = -1; side <= 1; side += 2) {
      TriSurface nac = make_rocket_body(0.16, 0.028, 0.3, 0.25, 10 * r, 10 * r);
      nac.translate({0.40, real_t(side) * 0.25, -0.055});
      assembly.append(nac);
    }
  }
  return assembly;
}

}  // namespace columbia::geom
