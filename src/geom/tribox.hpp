// Triangle / axis-aligned-box overlap test.
//
// Cut-cell detection in the Cartesian mesh generator reduces to "does this
// surface triangle intersect this hexahedral cell" (paper Sec. V). We use
// the separating-axis test of Akenine-Moller (13 axes: 3 box normals, the
// triangle normal, and 9 edge cross products).
#pragma once

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace columbia::geom {

/// True when triangle (a,b,c) and the box overlap (boundary touching counts).
bool triangle_box_overlap(const Vec3& a, const Vec3& b, const Vec3& c,
                          const Aabb& box);

}  // namespace columbia::geom
