#include "geom/tribox.hpp"

#include <algorithm>
#include <cmath>

namespace columbia::geom {

namespace {

/// Projects the three (box-centered) triangle vertices onto `axis` and
/// tests against the box's projection radius. Returns true when the axis
/// separates.
bool axis_separates(const Vec3& v0, const Vec3& v1, const Vec3& v2,
                    const Vec3& axis, const Vec3& half) {
  const real_t p0 = dot(v0, axis);
  const real_t p1 = dot(v1, axis);
  const real_t p2 = dot(v2, axis);
  const real_t r = half.x * std::abs(axis.x) + half.y * std::abs(axis.y) +
                   half.z * std::abs(axis.z);
  const real_t mn = std::min({p0, p1, p2});
  const real_t mx = std::max({p0, p1, p2});
  return mn > r || mx < -r;
}

}  // namespace

bool triangle_box_overlap(const Vec3& a, const Vec3& b, const Vec3& c,
                          const Aabb& box) {
  const Vec3 center = box.center();
  const Vec3 half = box.half_size();
  const Vec3 v0 = a - center;
  const Vec3 v1 = b - center;
  const Vec3 v2 = c - center;

  // 1) Box face normals (i.e. triangle AABB vs box).
  if (std::min({v0.x, v1.x, v2.x}) > half.x ||
      std::max({v0.x, v1.x, v2.x}) < -half.x)
    return false;
  if (std::min({v0.y, v1.y, v2.y}) > half.y ||
      std::max({v0.y, v1.y, v2.y}) < -half.y)
    return false;
  if (std::min({v0.z, v1.z, v2.z}) > half.z ||
      std::max({v0.z, v1.z, v2.z}) < -half.z)
    return false;

  const Vec3 e0 = v1 - v0;
  const Vec3 e1 = v2 - v1;
  const Vec3 e2 = v0 - v2;

  // 2) Triangle normal.
  if (axis_separates(v0, v1, v2, cross(e0, e1), half)) return false;

  // 3) Nine edge cross products.
  const Vec3 axes[3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const Vec3 edges[3] = {e0, e1, e2};
  for (const Vec3& u : axes)
    for (const Vec3& e : edges) {
      const Vec3 ax = cross(u, e);
      if (dot(ax, ax) < 1e-30) continue;  // parallel: axis degenerate
      if (axis_separates(v0, v1, v2, ax, half)) return false;
    }
  return true;
}

}  // namespace columbia::geom
