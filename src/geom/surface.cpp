#include "geom/surface.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "support/assert.hpp"

namespace columbia::geom {

void TriSurface::add_triangle(index_t a, index_t b, index_t c,
                              index_t component) {
  COLUMBIA_REQUIRE(a >= 0 && a < num_vertices());
  COLUMBIA_REQUIRE(b >= 0 && b < num_vertices());
  COLUMBIA_REQUIRE(c >= 0 && c < num_vertices());
  triangles_.push_back({{a, b, c}});
  components_.push_back(component);
}

index_t TriSurface::num_components() const {
  index_t m = 0;
  for (index_t c : components_) m = std::max(m, c + 1);
  return m;
}

Vec3 TriSurface::scaled_normal(index_t tri) const {
  const Triangle& t = triangles_[std::size_t(tri)];
  const Vec3& a = vertices_[std::size_t(t.v[0])];
  const Vec3& b = vertices_[std::size_t(t.v[1])];
  const Vec3& c = vertices_[std::size_t(t.v[2])];
  return cross(b - a, c - a);
}

real_t TriSurface::total_area() const {
  real_t s = 0;
  for (index_t i = 0; i < num_triangles(); ++i) s += area(i);
  return s;
}

Vec3 TriSurface::centroid(index_t tri) const {
  const Triangle& t = triangles_[std::size_t(tri)];
  return (vertices_[std::size_t(t.v[0])] + vertices_[std::size_t(t.v[1])] +
          vertices_[std::size_t(t.v[2])]) /
         3.0;
}

Aabb TriSurface::bounds() const {
  Aabb box;
  for (const Vec3& p : vertices_) box.expand(p);
  return box;
}

Aabb TriSurface::triangle_bounds(index_t tri) const {
  const Triangle& t = triangles_[std::size_t(tri)];
  Aabb box;
  for (int k = 0; k < 3; ++k) box.expand(vertices_[std::size_t(t.v[k])]);
  return box;
}

bool TriSurface::is_watertight() const {
  // Each directed edge must be matched by exactly one opposite directed
  // edge; equivalently each undirected edge appears exactly twice with
  // opposite orientations.
  std::unordered_map<std::uint64_t, int> count;
  auto key = [](index_t a, index_t b) {
    return (std::uint64_t(std::uint32_t(a)) << 32) | std::uint32_t(b);
  };
  for (const Triangle& t : triangles_) {
    for (int k = 0; k < 3; ++k) {
      const index_t a = t.v[k];
      const index_t b = t.v[(k + 1) % 3];
      if (a == b) return false;
      count[key(a, b)] += 1;
    }
  }
  for (const auto& [k, c] : count) {
    const index_t a = index_t(k >> 32);
    const index_t b = index_t(k & 0xffffffffu);
    auto it = count.find(key(b, a));
    if (c != 1 || it == count.end() || it->second != 1) return false;
  }
  return true;
}

void TriSurface::append(const TriSurface& other) {
  const index_t voffset = num_vertices();
  const index_t coffset = num_components();
  vertices_.insert(vertices_.end(), other.vertices_.begin(),
                   other.vertices_.end());
  for (std::size_t i = 0; i < other.triangles_.size(); ++i) {
    const Triangle& t = other.triangles_[i];
    triangles_.push_back(
        {{t.v[0] + voffset, t.v[1] + voffset, t.v[2] + voffset}});
    components_.push_back(other.components_[i] + coffset);
  }
}

void TriSurface::translate(const Vec3& d) {
  for (Vec3& p : vertices_) p += d;
}

void TriSurface::scale(real_t s) {
  for (Vec3& p : vertices_) p *= s;
}

namespace {

Vec3 rotate_point(const Vec3& p, const Vec3& origin, const Vec3& axis,
                  real_t angle) {
  // Rodrigues' rotation formula around a unit axis.
  const Vec3 v = p - origin;
  const real_t c = std::cos(angle), s = std::sin(angle);
  const Vec3 r = v * c + cross(axis, v) * s + axis * (dot(axis, v) * (1 - c));
  return origin + r;
}

}  // namespace

void TriSurface::rotate(const Vec3& origin, const Vec3& axis,
                        real_t angle_rad) {
  const Vec3 u = normalized(axis);
  for (Vec3& p : vertices_) p = rotate_point(p, origin, u, angle_rad);
}

void TriSurface::rotate_vertices_if(const Vec3& origin, const Vec3& axis,
                                    real_t angle_rad,
                                    std::span<const index_t> verts) {
  const Vec3 u = normalized(axis);
  for (index_t v : verts) {
    COLUMBIA_REQUIRE(v >= 0 && v < num_vertices());
    vertices_[std::size_t(v)] =
        rotate_point(vertices_[std::size_t(v)], origin, u, angle_rad);
  }
}

real_t TriSurface::enclosed_volume() const {
  // Divergence theorem: V = (1/6) sum over triangles of (a x b) . c
  real_t v6 = 0;
  for (const Triangle& t : triangles_) {
    const Vec3& a = vertices_[std::size_t(t.v[0])];
    const Vec3& b = vertices_[std::size_t(t.v[1])];
    const Vec3& c = vertices_[std::size_t(t.v[2])];
    v6 += dot(cross(a, b), c);
  }
  return v6 / 6.0;
}

}  // namespace columbia::geom
