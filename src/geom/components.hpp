// Analytic watertight component builders.
//
// The paper's test articles are component assemblies: a transport
// wing/body (+nacelle) for NSU3D (Fig. 13) and the full Space Shuttle
// Launch Vehicle — orbiter, external tank, two solid rocket boosters, five
// engines and attach hardware — for Cart3D (Figs. 9, 12, 20). The paper's
// geometry arrives from CAD; here we synthesize equivalent watertight
// triangulations analytically so all downstream code paths (cut cells,
// adaptation, SFC partitioning, control-surface deflection) are exercised
// with realistic component counts and surface densities.
#pragma once

#include "geom/surface.hpp"

namespace columbia::geom {

/// Closed UV-sphere (poles triangulated as fans).
TriSurface make_sphere(const Vec3& center, real_t radius, int n_theta = 16,
                       int n_phi = 32);

/// Axis-aligned box as 12 triangles, outward-oriented.
TriSurface make_box(const Vec3& lo, const Vec3& hi);

/// Closed body of revolution around the +x axis. `profile` holds
/// (x, radius) pairs with radius >= 0; the first and last entries are
/// closed with pole fans (radius forced to 0 there).
TriSurface make_body_of_revolution(std::span<const std::pair<real_t, real_t>> profile,
                                   int n_seg = 24);

/// Rocket-like body: ogive nose + cylinder + aft cone, length `length`,
/// max radius `radius`, nose fraction / tail fraction of the length.
TriSurface make_rocket_body(real_t length, real_t radius,
                            real_t nose_frac = 0.25, real_t tail_frac = 0.1,
                            int n_seg = 24, int n_axial = 24);

struct WingSpec {
  real_t span = 1.0;           // full span (y extent, centered at 0)
  real_t root_chord = 0.3;
  real_t tip_chord = 0.15;
  real_t sweep = 0.1;          // x offset of tip leading edge
  real_t thickness = 0.10;     // max t/c of the symmetric section
  real_t flap_deflection = 0;  // radians; trailing 30% rotates about hinge
  int n_span = 12;
  int n_chord = 16;
};

/// Closed swept tapered wing with a symmetric (NACA-00xx-like) section.
/// When `flap_deflection` is nonzero the aft 30% of every section is
/// rotated about the hinge line before lofting — this reproduces the
/// paper's automatic re-triangulation per control-surface setting (Fig. 8):
/// the surface stays watertight at every deflection.
TriSurface make_wing(const WingSpec& spec);

/// Full SSLV-like assembly: external tank, two boosters, orbiter fuselage,
/// orbiter wing (with elevon deflection), vertical tail, attach hardware.
/// Components are labeled 0..N-1 in that order. The paper's SSLV surface
/// has ~1.7M triangles; `resolution` scales triangle counts (1 => coarse).
TriSurface make_sslv(real_t elevon_deflection_rad = 0.0, int resolution = 1);

/// Transport wing/body configuration akin to the DPW case of Fig. 13;
/// `with_nacelle` adds an engine nacelle component (Fig. 13b).
TriSurface make_transport(bool with_nacelle = false, int resolution = 1);

}  // namespace columbia::geom
