// Axis-aligned bounding boxes.
#pragma once

#include <algorithm>
#include <limits>

#include "geom/vec3.hpp"

namespace columbia::geom {

struct Aabb {
  Vec3 lo{std::numeric_limits<real_t>::max(),
          std::numeric_limits<real_t>::max(),
          std::numeric_limits<real_t>::max()};
  Vec3 hi{std::numeric_limits<real_t>::lowest(),
          std::numeric_limits<real_t>::lowest(),
          std::numeric_limits<real_t>::lowest()};

  void expand(const Vec3& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    lo.z = std::min(lo.z, p.z);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
    hi.z = std::max(hi.z, p.z);
  }

  void merge(const Aabb& b) {
    expand(b.lo);
    expand(b.hi);
  }

  bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }

  Vec3 center() const { return 0.5 * (lo + hi); }
  Vec3 half_size() const { return 0.5 * (hi - lo); }

  bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
           p.z >= lo.z && p.z <= hi.z;
  }

  bool overlaps(const Aabb& b) const {
    return lo.x <= b.hi.x && hi.x >= b.lo.x && lo.y <= b.hi.y &&
           hi.y >= b.lo.y && lo.z <= b.hi.z && hi.z >= b.lo.z;
  }
};

}  // namespace columbia::geom
