// 3D vector arithmetic.
#pragma once

#include <cmath>

#include "support/types.hpp"

namespace columbia::geom {

struct Vec3 {
  real_t x = 0, y = 0, z = 0;

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(real_t s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  friend Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend Vec3 operator*(real_t s, Vec3 a) { return a *= s; }
  friend Vec3 operator*(Vec3 a, real_t s) { return a *= s; }
  friend Vec3 operator/(Vec3 a, real_t s) { return a *= (1.0 / s); }
  friend Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }

  real_t operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
};

inline real_t dot(const Vec3& a, const Vec3& b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

inline Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
          a.x * b.y - a.y * b.x};
}

inline real_t norm(const Vec3& a) { return std::sqrt(dot(a, a)); }

inline Vec3 normalized(const Vec3& a) {
  const real_t n = norm(a);
  return n > 0 ? a / n : a;
}

inline real_t distance(const Vec3& a, const Vec3& b) { return norm(a - b); }

}  // namespace columbia::geom
