// Solver-runtime parameter types shared by every multigrid solver.
//
// Both NSU3D (unstructured agglomeration multigrid) and Cart3D (Cartesian
// SFC-coarsened multigrid) drive the same execution discipline — V/W cycle
// walks with pre/post smoothing, damped coarse-grid corrections, a
// residual-order convergence target. The knobs controlling that discipline
// live here; solver option structs derive from SolveParams and add their
// physics-specific fields on top.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace columbia::core {

enum class CycleType { V, W };

/// Cycle-control fields common to all multigrid solvers. The
/// MultigridDriver reads these; physics adapters may mutate cfl (and
/// their own relaxation knobs) under guard backoff.
struct SolveParams {
  int mg_levels = 1;  // 1 = single grid
  CycleType cycle = CycleType::W;
  real_t cfl = 1.0;
  int smooth_steps = 1;       // smoothing steps per level visit
  int post_smooth_steps = 1;  // smoothing after coarse-grid correction
  real_t correction_damping = 0.8;  // scales the prolonged correction
  bool second_order = true;   // limited reconstruction on the fine level
};

/// Visits each level receives in one multigrid cycle, by replaying the
/// driver's recursion: a V-cycle touches every level once; a W-cycle
/// descends twice into every coarse level except the coarsest, giving the
/// geometric growth toward the coarse grids the paper measures in Sec. VI.
std::vector<index_t> cycle_visits(int num_levels, CycleType cycle);

}  // namespace columbia::core
