// The multigrid cycle orchestrator shared by every solver.
//
// NSU3D and Cart3D used to each own a copy of the same execution
// discipline: the V/W level walk with exclusive per-level timing, the
// convergence loop with its residual-order target, per-cycle telemetry,
// mid-cycle fault-injection hooks, and the guarded-solve wiring
// (checkpoint / rollback / CFL backoff). MultigridDriver is that
// discipline, written once; a solver supplies its physics through a small
// adapter surface and keeps only its smoothers, transfers and residuals.
//
// Required Physics surface (usually private members, with the driver
// befriended):
//
//   const core::SolveParams& solve_params() const;
//   int num_levels() const;
//   void smooth(int level, int steps);
//   void restrict_to(int level);          // level -> level+1
//   void prolong_correction(int level);   // level+1 -> level
//   real_t residual_norm();
//   std::size_t state_count();            // fine-grid state entries
//   void poison_state(std::size_t i);     // fault hook: NaN one entry
//   resil::Checkpoint make_checkpoint(std::uint64_t cycle,
//                                     std::span<const real_t> history) const;
//   void restore_checkpoint(const resil::Checkpoint& c);
//   void apply_backoff(const resil::GuardOptions& g);
//   void telemetry_forces(double& cl, double& cd) const;
//
// The driver is a template, not an interface — see DESIGN.md ("Templated
// driver, not a virtual one") for why.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "obs/obs.hpp"
#include "resil/faults.hpp"
#include "resil/guard.hpp"
#include "support/timer.hpp"
#include "support/types.hpp"

namespace columbia::core {

/// Per-level active-rank schedule for coarse-level agglomeration (paper
/// Fig. 19: coarse multigrid levels leave every rank with a partition too
/// small to amortize per-message latency). Level l runs its halo
/// exchanges on the first `active[l]` members of the transport group —
/// fed to ExchangePlanOptions::active_members — while the remaining
/// members park. The count is monotone non-increasing toward coarser
/// levels, so a member parked on level l stays parked on every level
/// below it.
struct AgglomerationSchedule {
  int group_size = 1;
  index_t min_items_per_member = 0;
  std::vector<int> active;  // per level, in [1, group_size]

  /// `level_items[l]` = nodes/cells of level l; a level keeps only enough
  /// members to give each at least `min_items_per_member` items
  /// (0 disables agglomeration — every level keeps the full group).
  static AgglomerationSchedule build(std::span<const index_t> level_items,
                                     int group_size,
                                     index_t min_items_per_member) {
    AgglomerationSchedule s;
    s.group_size = std::max(group_size, 1);
    s.min_items_per_member = min_items_per_member;
    int prev = s.group_size;
    for (const index_t items : level_items) {
      int a = s.group_size;
      if (min_items_per_member > 0) {
        const index_t want =
            (items + min_items_per_member - 1) / min_items_per_member;
        a = int(std::clamp(want, index_t(1), index_t(s.group_size)));
      }
      a = std::min(a, prev);
      s.active.push_back(a);
      prev = a;
    }
    return s;
  }

  bool engaged() const {
    for (const int a : active)
      if (a < group_size) return true;
    return false;
  }
};

template <class Physics>
class MultigridDriver {
 public:
  /// `name` keys every observable artifact ("nsu3d", "cart3d"): span and
  /// counter names, telemetry records, checkpoint tags.
  explicit MultigridDriver(std::string name)
      : name_(std::move(name)),
        span_cycle_(name_ + ".cycle"),
        span_level_(name_ + ".level"),
        span_solve_(name_ + ".solve"),
        span_guarded_(name_ + ".solve_guarded"),
        visits_ctr_(&obs::counter(name_ + ".level_visits")),
        cycles_ctr_(&obs::counter(name_ + ".cycles")) {}

  const std::string& name() const { return name_; }

  /// Read-only level-visit hooks for communication/compute overlap:
  /// `begin` fires on entry to every level visit (the place to post() a
  /// split halo exchange) and `end` right after the pre-smoother (the
  /// place to finish() it) — so the exchange flies exactly under the
  /// smoother, the dominant per-visit compute. Hooks must not mutate
  /// solver state: residual histories stay bit-identical with hooks
  /// installed or absent. Pass empty functions to uninstall.
  void set_level_hooks(std::function<void(int)> begin,
                       std::function<void(int)> end) {
    level_begin_ = std::move(begin);
    level_end_ = std::move(end);
  }

  /// One multigrid cycle from the finest level; returns the fine-grid
  /// residual norm. Includes the COLUMBIA_FAULTS state_nan hook: the site
  /// is a per-attempt counter, so a rolled-back retry of the same cycle
  /// draws a fresh injection decision instead of re-faulting.
  real_t run_cycle(Physics& phys) {
    OBS_SPAN(span_cycle_.c_str());
    cycles_ctr_->add(1);
    mg_cycle(phys, 0);
    resil::FaultInjector& inj = resil::FaultInjector::global();
    if (inj.armed()) {
      const std::uint64_t site = cycle_seq_++;
      if (inj.should_inject(resil::FaultKind::StateNaN, site)) {
        phys.poison_state(std::size_t(
            resil::site_hash(inj.spec().seed, site) % phys.state_count()));
      }
    }
    return phys.residual_norm();
  }

  /// Cycles until the residual drops by `orders` orders of magnitude or
  /// `max_cycles` elapse; returns the residual-norm history (initial norm
  /// first). Emits one obs::CycleRecord per cycle while convergence
  /// telemetry is active.
  std::vector<real_t> solve(Physics& phys, int max_cycles, real_t orders) {
    // COLUMBIA_REPORT flight recorder: prints/appends the phase profile of
    // this solve's window on scope exit. Purely observational — histories
    // stay bit-identical with reporting on or off (test_obs_determinism).
    obs::SolveReportScope report(name_);
    OBS_SPAN(span_solve_.c_str());
    std::vector<real_t> history{phys.residual_norm()};
    const real_t target = history[0] * std::pow(10.0, -orders);
    for (int c = 0; c < max_cycles; ++c) {
      // Telemetry is read-only on the solve: timings and force integrals
      // never feed back into the state, so histories stay bit-identical
      // with the JSONL sink open or closed.
      const bool telem = obs::telemetry_active();
      if (telem)
        level_seconds_.assign(std::size_t(phys.num_levels()), 0.0);
      history.push_back(run_cycle(phys));
      if (telem) {
        obs::CycleRecord rec;
        rec.solver = name_;
        rec.cycle = c + 1;
        rec.residual = double(history.back());
        rec.has_forces = true;
        phys.telemetry_forces(rec.cl, rec.cd);
        for (std::size_t l = 0; l < level_seconds_.size(); ++l)
          rec.levels.push_back({int(l), level_seconds_[l]});
        obs::emit_cycle(rec);
      }
      level_seconds_.clear();
      if (history.back() <= target) break;
    }
    return history;
  }

  /// Guarded solve: per-cycle NaN/blow-up detection, rollback to the last
  /// good checkpoint with parameter backoff, optional durable checkpoint +
  /// resume (see resil::guarded_solve). With faults off and no recovery
  /// triggered, the history matches solve() bit for bit.
  resil::GuardedSolveResult solve_guarded(
      Physics& phys, int max_cycles, real_t orders,
      const resil::GuardedSolveOptions& options) {
    obs::SolveReportScope report(name_);
    OBS_SPAN(span_guarded_.c_str());
    resil::GuardCallbacks cb;
    cb.solver = name_;
    cb.residual_norm = [&phys] { return phys.residual_norm(); };
    cb.run_cycle = [this, &phys] { return run_cycle(phys); };
    cb.snapshot = [&phys](std::uint64_t cycle,
                          std::span<const real_t> history) {
      return phys.make_checkpoint(cycle, history);
    };
    cb.restore = [&phys](const resil::Checkpoint& c) {
      phys.restore_checkpoint(c);
    };
    cb.backoff = [&phys, &options] { phys.apply_backoff(options.guard); };
    return resil::guarded_solve(options, max_cycles, orders, cb);
  }

 private:
  void mg_cycle(Physics& phys, int level) {
    OBS_SPAN(span_level_.c_str(), "level", level);
    visits_ctr_->add(1);
    // Exclusive per-level timing: the stretch before the coarse-grid visit
    // and the stretch after it, but never the recursion itself.
    const bool timed = !level_seconds_.empty();
    WallTimer t;
    const int nl = phys.num_levels();
    const SolveParams& p = phys.solve_params();
    if (level_begin_) level_begin_(level);
    phys.smooth(level, p.smooth_steps);
    if (level_end_) level_end_(level);
    if (level + 1 >= nl) {
      if (timed) level_seconds_[std::size_t(level)] += t.seconds();
      return;
    }
    phys.restrict_to(level);
    if (timed) level_seconds_[std::size_t(level)] += t.seconds();
    const int visits = (p.cycle == CycleType::W && level + 2 < nl) ? 2 : 1;
    for (int v = 0; v < visits; ++v) mg_cycle(phys, level + 1);
    t.reset();
    phys.prolong_correction(level);
    if (p.post_smooth_steps > 0) phys.smooth(level, p.post_smooth_steps);
    if (timed) level_seconds_[std::size_t(level)] += t.seconds();
  }

  std::string name_;
  std::string span_cycle_, span_level_, span_solve_, span_guarded_;
  obs::Counter* visits_ctr_;
  obs::Counter* cycles_ctr_;

  /// Exclusive per-level seconds for the current cycle; sized only while
  /// convergence telemetry is active (obs JSONL sink open), else empty.
  std::vector<double> level_seconds_;

  /// Monotone cycle-attempt counter: the site id for mid-cycle fault
  /// injection (resil::FaultKind::StateNaN).
  std::uint64_t cycle_seq_ = 0;

  /// Level-visit hooks (see set_level_hooks); empty = no-op.
  std::function<void(int)> level_begin_;
  std::function<void(int)> level_end_;
};

}  // namespace columbia::core
