// Pluggable wire layer under core::ExchangePlan (paper Figs. 16-18: the
// same halo schedule over different interconnects).
//
// A Transport moves whole datagrams between the members of a process
// group; the plan's wire protocol (exchange_plan.cpp) layers the existing
// checksummed-frame/retransmit discipline on top, plus the failure
// handling real interconnects need: per-message deadlines, bounded
// exponential-backoff retransmission, reconnect after connection resets,
// and peer-loss detection when a neighbor stops answering. Backends:
//
//   LocalTransport (this file)  in-process mailboxes — the deterministic
//                               reference backend for protocol tests and
//                               the loopback harness;
//   smp::ShmTransport           POSIX shared-memory rings between forked
//                               OS processes (smp/shm_transport.hpp);
//   smp::TcpTransport           TCP sockets across processes or hosts
//                               (smp/tcp_transport.hpp).
//
// A given (partitioning, strategy) schedule delivers bit-identical halo
// values on every backend: the frame protocol rejects anything the wire
// mangled and retransmits until the original payload lands (or the peer
// is declared lost, which surfaces as TransportError instead of a hang).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace columbia::core {

enum class TransportBackend { Local = 0, Shm, Tcp };
const char* transport_backend_name(TransportBackend b);

/// Outcome of one bounded-deadline receive. PeerGone is stronger than
/// Closed: the backend can prove the peer PROCESS exited (its pre-forked
/// listener refuses connections), not merely that one connection died.
enum class RecvOutcome { Ok, Timeout, Reset, Closed, PeerGone };

/// Per-endpoint failure/recovery ledger; mirrored into the obs counters
/// resil.transport.{timeout,retransmit,reconnect,peer_lost,heartbeat} and,
/// under a process-group launcher, into the group's shared control block.
enum class TransportCounter : int {
  Timeout = 0,
  Retransmit,
  Reconnect,
  PeerLost,
  Heartbeat,
};
inline constexpr int kNumTransportCounters = 5;
const char* transport_counter_name(TransportCounter c);

struct TransportCounters {
  std::uint64_t v[kNumTransportCounters] = {};
  std::uint64_t timeouts() const { return v[0]; }
  std::uint64_t retransmits() const { return v[1]; }
  std::uint64_t reconnects() const { return v[2]; }
  std::uint64_t peer_lost() const { return v[3]; }
  std::uint64_t heartbeats() const { return v[4]; }
};

/// Thrown when the wire protocol cannot make progress: the retransmit
/// budget is exhausted (DeliveryFailed) or the peer stopped answering
/// entirely (PeerLost). Never thrown for faults the protocol absorbs
/// (corruption, drops, resets, delays) — those only cost retransmissions.
class TransportError : public std::runtime_error {
 public:
  enum class Kind { DeliveryFailed, PeerLost };
  TransportError(Kind kind, int peer, const std::string& what)
      : std::runtime_error(what), kind_(kind), peer_(peer) {}
  Kind kind() const { return kind_; }
  int peer() const { return peer_; }

 private:
  Kind kind_;
  int peer_;
};

// --- Wire datagram codec ----------------------------------------------------
//
// Every datagram is a fixed header plus (for Data) the checksummed real_t
// frame produced by resil::frame_payload_into, verbatim. The header lets
// receivers match retransmitted attempts, discard stale duplicates, and
// re-acknowledge Data whose Ack was lost, all per (exchange seq, channel).

enum class WireType : std::uint16_t {
  Data = 1,
  Ack = 2,
  Nak = 3,
  // Clock-synchronization side channel (core/clock_sync.hpp): a Ping
  // carries the client's send timestamp, the Pong echoes it plus the
  // server's receive/transmit stamps. Both ride the ordinary datagram
  // plane; exchange recv loops that are not expecting them skip them the
  // same way they skip stale Ack/Nak control.
  Ping = 4,
  Pong = 5,
};

struct WireHeader {
  std::uint64_t seq = 0;       // endpoint exchange sequence number
  std::uint32_t channel = 0;   // plan channel index (global order)
  std::uint16_t type = 0;      // WireType
  std::uint16_t attempt = 0;   // sender attempt counter
};
inline constexpr std::size_t kWireHeaderBytes = 16;

/// Serializes header + frame into `out` (resized; capacity reused).
void encode_wire(const WireHeader& h, std::span<const real_t> frame,
                 std::vector<std::uint8_t>& out);

/// False when the datagram is shorter than a header or its frame bytes do
/// not form whole real_t words (a mangled length never crashes decode —
/// the frame checksum decides whether the payload survives).
bool decode_wire(std::span<const std::uint8_t> datagram, WireHeader& h,
                 std::vector<real_t>& frame);

/// One member's endpoint onto the group wire. Datagram semantics: send()
/// enqueues a whole message without waiting for the receiver; recv()
/// dequeues the next message from one peer, waiting at most deadline_ms.
/// Implementations are used from a single thread per endpoint (the plan's
/// exchange loop); heartbeat side-channels run on their own threads and
/// must not touch the data plane.
class Transport {
 public:
  virtual ~Transport() = default;

  virtual TransportBackend backend() const = 0;
  const char* name() const { return transport_backend_name(backend()); }
  virtual int group_rank() const = 0;
  virtual int group_size() const = 0;

  /// False on connection failure (the caller counts a reconnect and
  /// retries after reconnect()); a full outgoing queue is reported as
  /// false too and resolves the same way a lost message does.
  virtual bool send(int to, std::span<const std::uint8_t> datagram) = 0;
  virtual RecvOutcome recv(int from, std::vector<std::uint8_t>& datagram,
                           int deadline_ms) = 0;

  /// Re-establishes the link to `peer` after a Reset/send failure. True
  /// when the link is usable again (backends without connections are
  /// always usable).
  virtual bool reconnect(int peer) {
    (void)peer;
    return true;
  }

  /// Injected connection reset (COLUMBIA_FAULTS conn_reset): tear the
  /// peer link down the way the real failure would. No-op for backends
  /// without connections.
  virtual void inject_reset(int peer) { (void)peer; }

  /// Injected peer hang (COLUMBIA_FAULTS peer_hang): this member stops
  /// responding — data plane AND heartbeats — without exiting, so only an
  /// external failure detector (the process-group watchdog) can reclaim
  /// it. The default implementation notifies the hang hook and sleeps
  /// forever; LocalTransport throws instead so single-process tests can
  /// observe the condition.
  virtual void enter_hang();

  /// Bumps a failure/recovery counter: the endpoint ledger, the obs
  /// counter, and the external sink (process-group control block) when
  /// one is attached.
  void count(TransportCounter c, std::uint64_t n = 1);
  const TransportCounters& counters() const { return counters_; }

  using CounterSink = std::function<void(TransportCounter, std::uint64_t)>;
  void set_counter_sink(CounterSink sink) { sink_ = std::move(sink); }
  /// Invoked once when enter_hang begins (stops the heartbeat pulse).
  void set_hang_hook(std::function<void()> hook) { hang_hook_ = std::move(hook); }

  /// Endpoint-wide exchange sequence. Every ExchangePlan on this endpoint
  /// draws from the same counter (one draw per post), so (seq, channel)
  /// names one exchange instance of one plan: frames from different plans
  /// sharing the endpoint — per-level halo plans plus inter-level transfer
  /// plans — can never alias, and "stale duplicate" vs "future frame"
  /// comparisons stay meaningful across plans. The SPMD schedule (every
  /// member posts the same plans in the same order) keeps the counter
  /// identical on all members without any coordination.
  std::uint64_t take_exchange_seq() { return exchange_seq_++; }
  std::uint64_t next_exchange_seq() const { return exchange_seq_; }

  /// One Data frame that arrived while the receiver was completing a
  /// different (seq, channel) — parked here, deliberately un-acked, until
  /// the exchange that owns it consumes it (and only then acks). Lives on
  /// the endpoint rather than a plan for the same reason as the sequence
  /// counter: with several plans multiplexed over one endpoint, a frame
  /// routinely arrives while another plan is mid-protocol, and the owning
  /// plan must still find it. Entries recycle their capacity (no
  /// steady-state allocation once every message size has been seen).
  struct StashedFrame {
    bool full = false;
    int peer = -1;
    WireHeader header{};
    std::vector<real_t> frame;
  };
  std::vector<StashedFrame>& frame_stash() { return frame_stash_; }

  /// Ack addressed to a send this endpoint has in flight but is not
  /// currently waiting on. post() launches every first attempt up front,
  /// so a peer can ack channels far ahead of the sender's own protocol
  /// position; dropping those acks (they look like stale control) would
  /// cost a full deadline timeout + retransmit per channel — and a member
  /// recovering many channels serially that way can starve a peer's
  /// retransmit budget. Recorded here instead; wire_send consults the
  /// ledger before waiting. Same endpoint-wide scope as the frame stash.
  struct AckRecord {
    bool full = false;
    int peer = -1;
    std::uint64_t seq = 0;
    std::uint32_t channel = 0;
  };
  std::vector<AckRecord>& ack_ledger() { return ack_ledger_; }

 protected:
  void notify_hang() {
    if (hang_hook_) hang_hook_();
  }

 private:
  TransportCounters counters_;
  CounterSink sink_;
  std::function<void()> hang_hook_;
  std::uint64_t exchange_seq_ = 0;
  std::vector<StashedFrame> frame_stash_;
  std::vector<AckRecord> ack_ledger_;
};

// --- In-process reference backend -------------------------------------------

/// Datagram queues between N in-process members: one mutex/cv-protected
/// deque per directed pair. Deterministic and dependency-free — the wire
/// protocol's unit-test backend. Members may live on one thread (the
/// loopback harness drives both endpoints of every channel inline) or one
/// thread each.
class LocalGroup {
 public:
  explicit LocalGroup(int size);

  int size() const { return size_; }

  /// Endpoint for member `rank`; the group must outlive it.
  std::unique_ptr<Transport> endpoint(int rank);

  /// Implementation detail of the endpoints (public because the concrete
  /// endpoint type lives in transport.cpp's anonymous namespace).
  struct Pair {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::vector<std::uint8_t>> q;
  };
  Pair& pair(int from, int to) {
    return pairs_[std::size_t(from) * std::size_t(size_) + std::size_t(to)];
  }

 private:
  int size_;
  std::vector<Pair> pairs_;  // indexed [from * size + to]
};

}  // namespace columbia::core
