#include "core/exchange_plan.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "obs/obs.hpp"
#include "resil/faults.hpp"
#include "support/assert.hpp"

namespace columbia::core {

namespace {

/// Same attempt cap as smp::hybrid: a sender never injects into more than
/// kMaxHaloAttempts - 1 attempts of one message, so the final attempt is
/// always clean and every exchange terminates with the original payload.
constexpr int kMaxHaloAttempts = 4;

}  // namespace

ExchangePlan::ExchangePlan(RequestLists requests, ExchangePlanOptions options)
    : requests_(std::move(requests)), opt_(options) {
  nparts_ = index_t(requests_.size());
  COLUMBIA_REQUIRE(nparts_ >= 1);
  const bool master = opt_.strategy == ExchangeStrategy::MasterThread;
  const index_t tpp = master ? index_t(opt_.threads_per_process) : 1;
  COLUMBIA_REQUIRE(tpp >= 1);
  COLUMBIA_REQUIRE(nparts_ % tpp == 0);
  auto rank_of = [&](index_t part) { return part / tpp; };

  // Message layouts, keyed (sender rank, receiver rank). Iterating the
  // receivers' request lists in order reproduces the legacy strategies'
  // deterministic packing: smp::exchange_* builds its send lists the same
  // way and unpacks with per-sender cursors, so pack[i] -> unpack[i] here
  // lands each value in exactly the slot the legacy API fills.
  std::map<std::pair<index_t, index_t>, Channel> channels;
  ghost_items_.assign(std::size_t(nparts_), 0);
  neighbor_count_.assign(std::size_t(nparts_), 0);
  for (index_t q = 0; q < nparts_; ++q) {
    const index_t qr = rank_of(q);
    std::set<index_t> senders;
    const auto& reqs = requests_[std::size_t(q)];
    for (std::size_t k = 0; k < reqs.size(); ++k) {
      const HaloRequest& r = reqs[k];
      COLUMBIA_REQUIRE(r.from_partition >= 0 && r.from_partition < nparts_);
      if (r.from_partition != q) {
        ghost_items_[std::size_t(q)] += 1;
        senders.insert(r.from_partition);
      }
      const index_t sr = rank_of(r.from_partition);
      if (sr == qr) {
        local_.push_back({q, index_t(k), r.from_partition, r.item});
        continue;
      }
      Channel& ch = channels[{sr, qr}];
      ch.sender = sr;
      ch.receiver = qr;
      ch.pack.push_back({r.from_partition, r.item});
      ch.unpack.push_back({q, index_t(k)});
    }
    neighbor_count_[std::size_t(q)] = index_t(senders.size());
  }

  // Persistent buffers, sized once: steady-state exchanges only rewrite
  // them (resil::frame_payload_into / unframe_payload reuse capacity).
  channels_.reserve(channels.size());
  for (auto& [key, ch] : channels) {
    ch.payload.resize(ch.pack.size());
    ch.frame.reserve(ch.pack.size() + 2);
    ch.recv.reserve(ch.pack.size() + 2);
    channels_.push_back(std::move(ch));
  }
  out_.resize(std::size_t(nparts_));
  for (index_t p = 0; p < nparts_; ++p)
    out_[std::size_t(p)].resize(requests_[std::size_t(p)].size());

  // Plan-shape gauges: static facts about the schedule (not per-exchange
  // traffic, which the halo.plan.* counters track). The flight recorder
  // and columbia_report read these to contextualize comm fractions.
  obs::gauge("halo.plan.partitions").set(std::int64_t(nparts_));
  obs::gauge("halo.plan.messages_per_exchange")
      .set(std::int64_t(messages_per_exchange()));
  obs::gauge("halo.plan.payload_bytes")
      .set(std::int64_t(payload_bytes_per_exchange()));
}

void ExchangePlan::transmit(Channel& ch, std::uint64_t seq) {
  resil::FaultInjector& inj = resil::FaultInjector::global();
  // halo.xchg span attributes: each attempt records exactly one post span
  // (sender side) and one wait span (receiver side), so the observatory's
  // k-th-post-to-k-th-wait matching survives retransmitted attempts. The
  // plan runs both sides on the calling thread, so "wait" here is the
  // validation cost, not a blocking mailbox wait (smp::hybrid records the
  // genuine blocking flavor).
  const std::int64_t sender = std::int64_t(ch.sender);
  const std::int64_t receiver = std::int64_t(ch.receiver);
  const std::int64_t lvl = opt_.level;
  const std::int64_t strat = strategy_id(opt_.strategy);
  const std::int64_t bytes = std::int64_t(ch.pack.size() * sizeof(real_t));
  for (int attempt = 0;; ++attempt) {
    bool faulted = false;
    {
      obs::SpanGuard post("halo.xchg.post", {{"rank", sender},
                                             {"nbr", receiver},
                                             {"level", lvl},
                                             {"strat", strat},
                                             {"bytes", bytes}});
      resil::frame_payload_into(ch.payload, ch.frame);
      if (inj.armed() && attempt + 1 < kMaxHaloAttempts) {
        const std::uint64_t site = resil::halo_site(
            seq, std::uint64_t(ch.sender), std::uint64_t(ch.receiver),
            std::uint64_t(attempt));
        if (inj.should_inject(resil::FaultKind::HaloDrop, site)) {
          resil::drop_frame(ch.frame);
          faulted = true;
        } else if (inj.should_inject(resil::FaultKind::HaloCorrupt, site)) {
          resil::corrupt_frame(ch.frame, site);
          faulted = true;
        }
      }
      stats_.messages += 1;
      stats_.bytes += ch.frame.size() * sizeof(real_t);
    }
    if (faulted) {
      stats_.retransmits += 1;
      OBS_COUNT("resil.halo.retransmits", 1);
      {
        obs::SpanGuard rt("halo.xchg.retransmit", {{"rank", sender},
                                                   {"nbr", receiver},
                                                   {"level", lvl},
                                                   {"strat", strat},
                                                   {"bytes", bytes}});
      }
      // The receiver validates the frame and rejects it (corrupt_frame is
      // a no-op on empty payloads; such a frame still validates and is
      // delivered, ending the attempt loop early).
      bool ok;
      {
        obs::SpanGuard wait("halo.xchg.wait", {{"rank", receiver},
                                               {"nbr", sender},
                                               {"level", lvl},
                                               {"strat", strat}});
        ok = resil::unframe_payload(ch.frame, ch.recv);
      }
      if (!ok) {
        stats_.rejected += 1;
        OBS_COUNT("resil.halo.rejected", 1);
        continue;
      }
      return;
    }
    bool ok;
    {
      obs::SpanGuard wait("halo.xchg.wait", {{"rank", receiver},
                                             {"nbr", sender},
                                             {"level", lvl},
                                             {"strat", strat}});
      ok = resil::unframe_payload(ch.frame, ch.recv);
    }
    COLUMBIA_REQUIRE(ok);
    return;
  }
}

const PartitionData& ExchangePlan::exchange(const PartitionData& data) {
  OBS_SPAN("halo.plan.exchange");
  COLUMBIA_REQUIRE(index_t(data.size()) == nparts_);
  const std::uint64_t seq = resil::FaultInjector::global().next_exchange_seq();
  const std::uint64_t messages_before = stats_.messages;
  const std::uint64_t bytes_before = stats_.bytes;

  // Intra-rank requests: direct shared-memory copies.
  for (const LocalCopy& c : local_)
    out_[std::size_t(c.part)][std::size_t(c.pos)] =
        data[std::size_t(c.from)][std::size_t(c.item)];

  // One framed message per directed rank pair: gather, transmit (with the
  // retransmit protocol), scatter to the request slots.
  const std::int64_t lvl = opt_.level;
  const std::int64_t strat = strategy_id(opt_.strategy);
  for (Channel& ch : channels_) {
    {
      obs::SpanGuard pack("halo.xchg.pack",
                          {{"rank", std::int64_t(ch.sender)},
                           {"nbr", std::int64_t(ch.receiver)},
                           {"level", lvl},
                           {"strat", strat},
                           {"bytes",
                            std::int64_t(ch.pack.size() * sizeof(real_t))}});
      for (std::size_t i = 0; i < ch.pack.size(); ++i)
        ch.payload[i] =
            data[std::size_t(ch.pack[i].part)][std::size_t(ch.pack[i].item)];
    }
    transmit(ch, seq);
    {
      obs::SpanGuard unpack(
          "halo.xchg.unpack",
          {{"rank", std::int64_t(ch.receiver)},
           {"nbr", std::int64_t(ch.sender)},
           {"level", lvl},
           {"strat", strat},
           {"bytes", std::int64_t(ch.unpack.size() * sizeof(real_t))}});
      for (std::size_t i = 0; i < ch.unpack.size(); ++i)
        out_[std::size_t(ch.unpack[i].part)][std::size_t(ch.unpack[i].pos)] =
            ch.recv[i];
    }
  }

  stats_.exchanges += 1;
  OBS_COUNT("halo.plan.exchanges", 1);
  OBS_COUNT("halo.plan.messages", stats_.messages - messages_before);
  OBS_COUNT("halo.plan.bytes", stats_.bytes - bytes_before);
  return out_;
}

index_t ExchangePlan::ghost_items(index_t part) const {
  return ghost_items_[std::size_t(part)];
}

index_t ExchangePlan::neighbor_count(index_t part) const {
  return neighbor_count_[std::size_t(part)];
}

index_t ExchangePlan::max_ghost_items() const {
  index_t m = 0;
  for (index_t g : ghost_items_) m = std::max(m, g);
  return m;
}

index_t ExchangePlan::total_ghost_items() const {
  index_t t = 0;
  for (index_t g : ghost_items_) t += g;
  return t;
}

index_t ExchangePlan::max_neighbors() const {
  index_t m = 0;
  for (index_t d : neighbor_count_) m = std::max(m, d);
  return m;
}

std::uint64_t ExchangePlan::payload_bytes_per_exchange() const {
  std::uint64_t b = 0;
  for (const Channel& ch : channels_)
    b += std::uint64_t(ch.pack.size()) * sizeof(real_t);
  return b;
}

}  // namespace columbia::core
