#include "core/exchange_plan.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <utility>

#include "core/clock_sync.hpp"
#include "obs/obs.hpp"
#include "resil/faults.hpp"
#include "support/assert.hpp"

namespace columbia::core {

namespace {

/// Same attempt cap as smp::hybrid: a sender never injects into more than
/// kMaxHaloAttempts - 1 attempts of one message, so the final attempt is
/// always clean and every exchange terminates with the original payload.
constexpr int kMaxHaloAttempts = 4;

}  // namespace

ExchangePlan::ExchangePlan(RequestLists requests, ExchangePlanOptions options)
    : requests_(std::move(requests)), opt_(options) {
  nparts_ = index_t(requests_.size());
  COLUMBIA_REQUIRE(nparts_ >= 1);
  if (opt_.transport != nullptr) {
    COLUMBIA_REQUIRE(opt_.transport->group_size() >= 1);
    // The fault-injection bound needs at least one guaranteed-clean final
    // attempt; the deadline must be a real wait.
    COLUMBIA_REQUIRE(opt_.wire.max_attempts >= 2);
    COLUMBIA_REQUIRE(opt_.wire.deadline_ms >= 1);
    COLUMBIA_REQUIRE(opt_.wire.backoff_base_ms >= 0);
    COLUMBIA_REQUIRE(opt_.wire.backoff_max_ms >= opt_.wire.backoff_base_ms);
    COLUMBIA_REQUIRE(opt_.active_members >= 0);
    COLUMBIA_REQUIRE(opt_.sender_active_members >= 0);
  }
  const bool master = opt_.strategy == ExchangeStrategy::MasterThread;
  const index_t tpp = master ? index_t(opt_.threads_per_process) : 1;
  COLUMBIA_REQUIRE(tpp >= 1);
  COLUMBIA_REQUIRE(nparts_ % tpp == 0);
  auto rank_of = [&](index_t part) { return part / tpp; };

  // Message layouts, keyed (sender rank, receiver rank). Iterating the
  // receivers' request lists in order reproduces the legacy strategies'
  // deterministic packing: smp::exchange_* builds its send lists the same
  // way and unpacks with per-sender cursors, so pack[i] -> unpack[i] here
  // lands each value in exactly the slot the legacy API fills.
  std::map<std::pair<index_t, index_t>, Channel> channels;
  ghost_items_.assign(std::size_t(nparts_), 0);
  neighbor_count_.assign(std::size_t(nparts_), 0);
  for (index_t q = 0; q < nparts_; ++q) {
    const index_t qr = rank_of(q);
    std::set<index_t> senders;
    const auto& reqs = requests_[std::size_t(q)];
    for (std::size_t k = 0; k < reqs.size(); ++k) {
      const HaloRequest& r = reqs[k];
      COLUMBIA_REQUIRE(r.from_partition >= 0 && r.from_partition < nparts_);
      if (r.from_partition != q) {
        ghost_items_[std::size_t(q)] += 1;
        senders.insert(r.from_partition);
      }
      const index_t sr = rank_of(r.from_partition);
      if (sr == qr) {
        local_.push_back({q, index_t(k), r.from_partition, r.item});
        continue;
      }
      Channel& ch = channels[{sr, qr}];
      ch.sender = sr;
      ch.receiver = qr;
      ch.pack.push_back({r.from_partition, r.item});
      ch.unpack.push_back({q, index_t(k)});
    }
    neighbor_count_[std::size_t(q)] = index_t(senders.size());
  }

  // Persistent buffers, sized once: steady-state exchanges only rewrite
  // them (resil::frame_payload_into / unframe_payload reuse capacity).
  channels_.reserve(channels.size());
  for (auto& [key, ch] : channels) {
    ch.payload.resize(ch.pack.size());
    ch.frame.reserve(ch.pack.size() + 2);
    ch.recv.reserve(ch.pack.size() + 2);
    channels_.push_back(std::move(ch));
  }
  out_.resize(std::size_t(nparts_));
  for (index_t p = 0; p < nparts_; ++p)
    out_[std::size_t(p)].resize(requests_[std::size_t(p)].size());

  // Plan-shape gauges: static facts about the schedule (not per-exchange
  // traffic, which the halo.plan.* counters track). The flight recorder
  // and columbia_report read these to contextualize comm fractions.
  obs::gauge("halo.plan.partitions").set(std::int64_t(nparts_));
  obs::gauge("halo.plan.messages_per_exchange")
      .set(std::int64_t(messages_per_exchange()));
  obs::gauge("halo.plan.payload_bytes")
      .set(std::int64_t(payload_bytes_per_exchange()));
}

void ExchangePlan::transmit(Channel& ch, std::uint64_t seq) {
  resil::FaultInjector& inj = resil::FaultInjector::global();
  // halo.xchg span attributes: each attempt records exactly one post span
  // (sender side) and one wait span (receiver side), so the observatory's
  // k-th-post-to-k-th-wait matching survives retransmitted attempts. The
  // plan runs both sides on the calling thread, so "wait" here is the
  // validation cost, not a blocking mailbox wait (smp::hybrid records the
  // genuine blocking flavor).
  const std::int64_t sender = std::int64_t(ch.sender);
  const std::int64_t receiver = std::int64_t(ch.receiver);
  const std::int64_t lvl = opt_.level;
  const std::int64_t strat = strategy_id(opt_.strategy);
  const std::int64_t bytes = std::int64_t(ch.pack.size() * sizeof(real_t));
  for (int attempt = 0;; ++attempt) {
    bool faulted = false;
    {
      obs::SpanGuard post("halo.xchg.post", {{"rank", sender},
                                             {"nbr", receiver},
                                             {"level", lvl},
                                             {"strat", strat},
                                             {"bytes", bytes}});
      resil::frame_payload_into(ch.payload, ch.frame);
      if (inj.armed() && attempt + 1 < kMaxHaloAttempts) {
        const std::uint64_t site = resil::halo_site(
            seq, std::uint64_t(ch.sender), std::uint64_t(ch.receiver),
            std::uint64_t(attempt));
        if (inj.should_inject(resil::FaultKind::HaloDrop, site)) {
          resil::drop_frame(ch.frame);
          faulted = true;
        } else if (inj.should_inject(resil::FaultKind::HaloCorrupt, site)) {
          resil::corrupt_frame(ch.frame, site);
          faulted = true;
        }
      }
      stats_.messages += 1;
      stats_.bytes += ch.frame.size() * sizeof(real_t);
    }
    if (faulted) {
      stats_.retransmits += 1;
      OBS_COUNT("resil.halo.retransmits", 1);
      {
        obs::SpanGuard rt("halo.xchg.retransmit", {{"rank", sender},
                                                   {"nbr", receiver},
                                                   {"level", lvl},
                                                   {"strat", strat},
                                                   {"bytes", bytes}});
      }
      // The receiver validates the frame and rejects it (corrupt_frame is
      // a no-op on empty payloads; such a frame still validates and is
      // delivered, ending the attempt loop early).
      bool ok;
      {
        obs::SpanGuard wait("halo.xchg.wait", {{"rank", receiver},
                                               {"nbr", sender},
                                               {"level", lvl},
                                               {"strat", strat}});
        ok = resil::unframe_payload(ch.frame, ch.recv);
      }
      if (!ok) {
        stats_.rejected += 1;
        OBS_COUNT("resil.halo.rejected", 1);
        continue;
      }
      return;
    }
    bool ok;
    {
      obs::SpanGuard wait("halo.xchg.wait", {{"rank", receiver},
                                             {"nbr", sender},
                                             {"level", lvl},
                                             {"strat", strat}});
      ok = resil::unframe_payload(ch.frame, ch.recv);
    }
    COLUMBIA_REQUIRE(ok);
    return;
  }
}

// --- Wire path --------------------------------------------------------------
//
// With a Transport attached the plan is one member's view of a process
// group: channel rank r lives on member r % group_size. Every member runs
// the same schedule in the same global channel order (the deadlock-freedom
// argument: a member blocked receiving channel c has completed every
// channel < c, and sends are buffered, so its peers always progress to c).
// The sender of a channel runs the DATA/ACK/NAK retransmit protocol; the
// receiver adopts the wire-validated payload — the wire bytes are
// load-bearing, which is what makes cross-backend bit-identity a real
// claim rather than a tautology. Members on neither end (and the sender,
// for its replicated copy of out_) validate the frame locally.

int ExchangePlan::recv_active() const {
  const int n = opt_.transport->group_size();
  return opt_.active_members > 0 ? std::min(opt_.active_members, n) : n;
}

int ExchangePlan::sender_active() const {
  const int n = opt_.transport->group_size();
  return opt_.sender_active_members > 0
             ? std::min(opt_.sender_active_members, n)
             : recv_active();
}

int ExchangePlan::member_of(index_t rank, bool sender_side) const {
  const int n = sender_side ? sender_active() : recv_active();
  return int(std::uint64_t(rank) % std::uint64_t(n));
}

void ExchangePlan::maybe_hang() {
  resil::FaultInjector& inj = resil::FaultInjector::global();
  if (!inj.armed()) return;
  if (inj.should_inject(resil::FaultKind::PeerHang,
                        std::uint64_t(opt_.transport->group_rank())))
    opt_.transport->enter_hang();
}

void ExchangePlan::local_validate(Channel& ch) {
  // Replicated fill for members not on the receiving end of the wire: the
  // same frame/unframe discipline, no traffic, no spans, no fault sites
  // (only the wire sender draws this channel's sites, so the injected set
  // stays identical across group sizes).
  resil::frame_payload_into(ch.payload, ch.frame);
  COLUMBIA_REQUIRE(resil::unframe_payload(ch.frame, ch.recv));
}

void ExchangePlan::note_retransmit(const Channel& ch) {
  stats_.retransmits += 1;
  OBS_COUNT("resil.halo.retransmits", 1);
  opt_.transport->count(TransportCounter::Retransmit);
  obs::SpanGuard rt("halo.xchg.retransmit",
                    {{"rank", std::int64_t(ch.sender)},
                     {"nbr", std::int64_t(ch.receiver)},
                     {"level", std::int64_t(opt_.level)},
                     {"strat", std::int64_t(strategy_id(opt_.strategy))},
                     {"bytes",
                      std::int64_t(ch.pack.size() * sizeof(real_t))}});
}

void ExchangePlan::send_control(int peer, WireType type,
                                const WireHeader& data_header) {
  WireHeader h = data_header;
  h.type = std::uint16_t(type);
  encode_wire(h, {}, wire_ctl_);
  if (!opt_.transport->send(peer, wire_ctl_)) {
    opt_.transport->count(TransportCounter::Reconnect);
    opt_.transport->reconnect(peer);
  }
}

ExchangePlan::Await ExchangePlan::await_ack(int peer, std::uint64_t seq,
                                            std::uint32_t ci, int deadline_ms,
                                            bool& heard_peer) {
  Transport* t = opt_.transport;
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(deadline_ms);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= until) return Await::Timeout;
    const int remaining =
        int(std::chrono::duration_cast<std::chrono::milliseconds>(until - now)
                .count()) +
        1;
    const RecvOutcome ro = t->recv(peer, wire_in_, remaining);
    if (ro == RecvOutcome::Timeout) return Await::Timeout;
    if (ro == RecvOutcome::PeerGone) return Await::PeerGone;
    if (ro != RecvOutcome::Ok) return Await::Reset;
    heard_peer = true;
    WireHeader h;
    if (!decode_wire(wire_in_, h, wire_frame_)) continue;
    const WireType type = WireType(h.type);
    if (type == WireType::Data) {
      // Data from this peer for a channel we already delivered (its Ack
      // was destroyed, e.g. by a reset): re-Ack so the peer can progress.
      // Data for a channel we have NOT delivered yet — routine now that
      // post() launches every first attempt before anyone receives — must
      // NOT be acknowledged here: that would tell the peer it arrived
      // while the wire_recv owning the channel never sees it. Stash it,
      // un-acked, for that wire_recv to consume without a wire round
      // trip.
      if (h.seq < seq || (h.seq == seq && h.channel < ci))
        send_control(peer, WireType::Ack, h);
      else
        stash_put(peer, h);
      continue;
    }
    if (h.seq != seq || h.channel != ci) {
      // An Ack addressed to another of our in-flight sends (post() puts
      // every channel's first attempt on the wire before the protocol
      // walks them) — ledger it for the wire_send that owns it. A Nak for
      // another channel stays timeout-recovered (rare and cheap).
      if (type == WireType::Ack) ack_put(peer, h);
      continue;
    }
    if (type == WireType::Ack) return Await::Acked;
    if (type == WireType::Nak) return Await::Nacked;
  }
}

void ExchangePlan::send_attempt(std::uint32_t ci, Channel& ch,
                                std::uint64_t seq, int attempt, int peer) {
  Transport* t = opt_.transport;
  resil::FaultInjector& inj = resil::FaultInjector::global();
  const int fault_cap = std::min(kMaxHaloAttempts, opt_.wire.max_attempts);
  bool drop_on_wire = false;
  bool reset_after_send = false;
  {
    obs::SpanGuard post(
        "halo.xchg.post",
        {{"rank", std::int64_t(ch.sender)},
         {"nbr", std::int64_t(ch.receiver)},
         {"level", std::int64_t(opt_.level)},
         {"strat", std::int64_t(strategy_id(opt_.strategy))},
         {"bytes", std::int64_t(ch.pack.size() * sizeof(real_t))}});
    resil::frame_payload_into(ch.payload, ch.frame);
    if (inj.armed() && attempt + 1 < fault_cap) {
      const std::uint64_t site = resil::halo_site(
          seq, std::uint64_t(ch.sender), std::uint64_t(ch.receiver),
          std::uint64_t(attempt));
      if (inj.should_inject(resil::FaultKind::MsgDelay, site))
        std::this_thread::sleep_for(std::chrono::milliseconds(
            inj.spec().param[std::size_t(resil::FaultKind::MsgDelay)]));
      if (inj.should_inject(resil::FaultKind::ConnReset, site))
        reset_after_send = true;
      if (inj.should_inject(resil::FaultKind::MsgDrop, site))
        drop_on_wire = true;
      else if (inj.should_inject(resil::FaultKind::HaloDrop, site))
        resil::drop_frame(ch.frame);
      else if (inj.should_inject(resil::FaultKind::HaloCorrupt, site))
        resil::corrupt_frame(ch.frame, site);
    }
    encode_wire({seq, ci, std::uint16_t(WireType::Data),
                 std::uint16_t(attempt)},
                ch.frame, wire_out_);
    if (!drop_on_wire && !t->send(peer, wire_out_)) {
      t->count(TransportCounter::Reconnect);
      t->reconnect(peer);
    }
    stats_.messages += 1;
    stats_.bytes += ch.frame.size() * sizeof(real_t);
  }
  // The injected reset lands AFTER the send: the link dies with the
  // message in flight, the way real resets lose data.
  if (reset_after_send) t->inject_reset(peer);
}

void ExchangePlan::stash_put(int peer, const WireHeader& h) {
  auto& stash = opt_.transport->frame_stash();
  Transport::StashedFrame* match = nullptr;
  Transport::StashedFrame* vacant = nullptr;
  for (Transport::StashedFrame& s : stash) {
    if (s.full) {
      if (s.peer == peer && s.header.seq == h.seq &&
          s.header.channel == h.channel) {
        match = &s;
        break;
      }
    } else if (vacant == nullptr) {
      vacant = &s;
    }
  }
  Transport::StashedFrame* slot = match != nullptr ? match : vacant;
  if (slot == nullptr) {
    stash.emplace_back();
    slot = &stash.back();
  }
  slot->full = true;
  slot->peer = peer;
  slot->header = h;
  slot->frame = wire_frame_;  // vector assign recycles capacity
}

bool ExchangePlan::stash_take(int peer, std::uint64_t seq, std::uint32_t ci,
                              WireHeader& h) {
  for (Transport::StashedFrame& s : opt_.transport->frame_stash()) {
    if (!s.full || s.peer != peer || s.header.seq != seq ||
        s.header.channel != ci)
      continue;
    h = s.header;
    wire_frame_ = s.frame;
    s.full = false;
    return true;
  }
  return false;
}

void ExchangePlan::ack_put(int peer, const WireHeader& h) {
  auto& ledger = opt_.transport->ack_ledger();
  Transport::AckRecord* vacant = nullptr;
  for (Transport::AckRecord& a : ledger) {
    if (a.full) {
      if (a.peer == peer && a.seq == h.seq && a.channel == h.channel)
        return;  // duplicate ack, already recorded
    } else if (vacant == nullptr) {
      vacant = &a;
    }
  }
  if (vacant == nullptr) {
    ledger.emplace_back();
    vacant = &ledger.back();
  }
  vacant->full = true;
  vacant->peer = peer;
  vacant->seq = h.seq;
  vacant->channel = h.channel;
}

bool ExchangePlan::ack_take(int peer, std::uint64_t seq, std::uint32_t ci) {
  for (Transport::AckRecord& a : opt_.transport->ack_ledger()) {
    if (a.full && a.peer == peer && a.seq == seq && a.channel == ci) {
      a.full = false;
      return true;
    }
  }
  return false;
}

void ExchangePlan::purge_round(std::uint64_t seq) {
  // Anything still parked for a completed round is a duplicate (a
  // retransmission whose original already landed, or an ack consumed by
  // proxy). In the exotic case of rounds finished out of post order a
  // purged entry could still have an owner — which then recovers through
  // one ordinary timeout + retransmit, so the purge is always safe.
  for (Transport::StashedFrame& s : opt_.transport->frame_stash())
    if (s.full && s.header.seq <= seq) s.full = false;
  for (Transport::AckRecord& a : opt_.transport->ack_ledger())
    if (a.full && a.seq <= seq) a.full = false;
}

void ExchangePlan::wire_send(std::uint32_t ci, Channel& ch, std::uint64_t seq,
                             bool first_sent) {
  Transport* t = opt_.transport;
  maybe_hang();
  const int peer = member_of(ch.receiver, false);
  int backoff = opt_.wire.backoff_base_ms;
  bool peer_answered = false;
  bool sent = first_sent;  // current attempt's frame already on the wire?
  std::uint64_t sends = first_sent ? 1 : 0;
  int attempt = 0;
  while (attempt < opt_.wire.max_attempts) {
    // The ack may already be in the ledger: the peer answered while this
    // member's protocol was waiting on an earlier channel (post() puts
    // every first attempt on the wire up front).
    if (ack_take(peer, seq, ci)) return;
    if (!sent) {
      if (sends > 0) note_retransmit(ch);
      send_attempt(ci, ch, seq, attempt, peer);
      ++sends;
      sent = true;
    }
    bool heard = false;
    const Await aw = await_ack(peer, seq, ci, opt_.wire.deadline_ms, heard);
    switch (aw) {
      case Await::Acked:
        return;
      case Await::PeerGone:
        // The fabric proved the peer process exited. If it exited cleanly
        // it completed the identical SPMD schedule, which includes
        // delivering this channel — its Ack died with it, so treat the
        // send as acknowledged. If it crashed instead, the launcher sees
        // its exit status and fails or relaunches the whole group; our
        // verdict on this channel is moot either way.
        return;
      case Await::Nacked:
        peer_answered = true;
        ++attempt;
        sent = false;  // receiver rejected the frame; retransmit immediately
        break;
      case Await::Reset:
        t->count(TransportCounter::Reconnect);
        t->reconnect(peer);
        ++attempt;
        sent = false;
        break;
      case Await::Timeout:
        // A window that heard the peer is not a dead window: the peer is
        // alive but behind (e.g. serially recovering reset-flushed acks,
        // or still computing before its finish()). Retransmit — our
        // traffic is the peer's liveness evidence too, and the resend
        // covers a flushed frame — but charge no budget: attempts measure
        // peer silence, and a live peer's catch-up time must not convert
        // into PeerLost.
        if (heard) {
          sent = false;
          break;
        }
        t->count(TransportCounter::Timeout);
        if (backoff > 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        backoff = std::min(std::max(backoff, 1) * 2,
                           opt_.wire.backoff_max_ms);
        ++attempt;
        sent = false;
        break;
    }
  }
  const auto kind = peer_answered ? TransportError::Kind::DeliveryFailed
                                  : TransportError::Kind::PeerLost;
  t->count(TransportCounter::PeerLost);
  throw TransportError(
      kind, peer,
      std::string("halo channel ") + std::to_string(ci) + " (rank " +
          std::to_string(ch.sender) + " -> " + std::to_string(ch.receiver) +
          ", level " + std::to_string(opt_.level) + ", seq " +
          std::to_string(seq) + ") undelivered to member " +
          std::to_string(peer) + " after " +
          std::to_string(opt_.wire.max_attempts) + " attempts over " +
          t->name());
}

void ExchangePlan::wire_recv(std::uint32_t ci, Channel& ch,
                             std::uint64_t seq) {
  Transport* t = opt_.transport;
  maybe_hang();
  const int peer = member_of(ch.sender, true);
  const std::int64_t sender = std::int64_t(ch.sender);
  const std::int64_t receiver = std::int64_t(ch.receiver);
  const std::int64_t lvl = opt_.level;
  const std::int64_t strat = strategy_id(opt_.strategy);
  // Outlast the sender's whole retransmit schedule (attempts + backoff)
  // plus compute skew between members before declaring the peer lost. The
  // window SLIDES on traffic: every frame the peer puts on the wire —
  // whatever it addresses — is proof it is alive and working through its
  // schedule, so only sustained silence runs the patience out.
  const auto patience = std::chrono::milliseconds(opt_.wire.deadline_ms) *
                        (opt_.wire.max_attempts * 2 + 2);
  auto until = std::chrono::steady_clock::now() + patience;
  for (;;) {
    // Stashed delivery first: the frame arrived while this member was
    // busy elsewhere in the schedule — the aged interval it spent in the
    // stash is exactly the wait the split path claims back.
    {
      WireHeader sh;
      if (stash_take(peer, seq, ci, sh)) {
        bool ok;
        {
          obs::SpanGuard wait("halo.xchg.wait", {{"rank", receiver},
                                                 {"nbr", sender},
                                                 {"level", lvl},
                                                 {"strat", strat}});
          ok = resil::unframe_payload(wire_frame_, ch.recv);
        }
        if (ok) {
          send_control(peer, WireType::Ack, sh);
          return;
        }
        stats_.rejected += 1;
        OBS_COUNT("resil.halo.rejected", 1);
        send_control(peer, WireType::Nak, sh);
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= until) break;
    const int remaining =
        int(std::chrono::duration_cast<std::chrono::milliseconds>(until - now)
                .count()) +
        1;
    RecvOutcome ro;
    {
      obs::SpanGuard wait("halo.xchg.wait", {{"rank", receiver},
                                             {"nbr", sender},
                                             {"level", lvl},
                                             {"strat", strat}});
      ro = t->recv(peer, wire_in_,
                   std::min(remaining, opt_.wire.deadline_ms));
    }
    if (ro == RecvOutcome::Timeout) {
      t->count(TransportCounter::Timeout);
      continue;
    }
    if (ro == RecvOutcome::PeerGone) {
      // The sender's process exited while still owing us this channel —
      // it cannot have completed its schedule, so it crashed. No data is
      // coming; fail now rather than running out the patience window.
      break;
    }
    if (ro != RecvOutcome::Ok) {
      t->count(TransportCounter::Reconnect);
      t->reconnect(peer);
      continue;
    }
    until = std::chrono::steady_clock::now() + patience;  // peer is alive
    WireHeader h;
    if (!decode_wire(wire_in_, h, wire_frame_)) continue;
    if (WireType(h.type) != WireType::Data) {
      // An Ack for one of this member's own in-flight sends can land here
      // too — ledger it for its wire_send instead of dropping it.
      if (WireType(h.type) == WireType::Ack) ack_put(peer, h);
      continue;
    }
    if (h.seq != seq || h.channel != ci) {
      // Duplicate of an already-delivered channel whose Ack was lost:
      // re-Ack it. A frame from the future — post() batching lets the
      // peer run ahead, even into the next round — is stashed, un-acked,
      // for the wire_recv that owns it.
      if (h.seq < seq || (h.seq == seq && h.channel < ci))
        send_control(peer, WireType::Ack, h);
      else
        stash_put(peer, h);
      continue;
    }
    if (resil::unframe_payload(wire_frame_, ch.recv)) {
      send_control(peer, WireType::Ack, h);
      return;
    }
    stats_.rejected += 1;
    OBS_COUNT("resil.halo.rejected", 1);
    send_control(peer, WireType::Nak, h);
  }
  t->count(TransportCounter::PeerLost);
  throw TransportError(
      TransportError::Kind::PeerLost, peer,
      std::string("no halo data for channel ") + std::to_string(ci) +
          " (rank " + std::to_string(ch.sender) + " -> " +
          std::to_string(ch.receiver) + ") from member " +
          std::to_string(peer) + " over " + t->name());
}

void ExchangePlan::wire_loopback(std::uint32_t ci, Channel& ch,
                                 std::uint64_t seq, bool first_sent) {
  // Both endpoints map to this member and loopback_self is set: drive the
  // full send/receive protocol inline through the real backend (rings,
  // sockets) — the single-process harness for wire tests. Delivery itself
  // is the acknowledgement, so no Ack/Nak traffic. Span and ledger
  // accounting matches transmit(): one post + one wait per attempt, one
  // retransmit span per re-attempt.
  Transport* t = opt_.transport;
  maybe_hang();
  const int self = t->group_rank();
  const std::int64_t sender = std::int64_t(ch.sender);
  const std::int64_t receiver = std::int64_t(ch.receiver);
  const std::int64_t lvl = opt_.level;
  const std::int64_t strat = strategy_id(opt_.strategy);
  int backoff = opt_.wire.backoff_base_ms;
  for (int attempt = 0; attempt < opt_.wire.max_attempts; ++attempt) {
    if (attempt > 0) note_retransmit(ch);
    if (!(attempt == 0 && first_sent))
      send_attempt(ci, ch, seq, attempt, self);
    // One attempt = one deadline window. Inside it the shared self
    // mailbox is drained: frames for OTHER channels (routine with post()
    // batching every first attempt) are stashed without charging the
    // attempt budget; only a timeout or a rejected payload of THIS
    // channel ends the window and triggers a resend.
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(opt_.wire.deadline_ms);
    bool resend = false;
    while (!resend) {
      {
        WireHeader sh;
        if (stash_take(self, seq, ci, sh)) {
          bool ok;
          {
            obs::SpanGuard wait("halo.xchg.wait", {{"rank", receiver},
                                                   {"nbr", sender},
                                                   {"level", lvl},
                                                   {"strat", strat}});
            ok = resil::unframe_payload(wire_frame_, ch.recv);
          }
          if (ok) return;
          stats_.rejected += 1;
          OBS_COUNT("resil.halo.rejected", 1);
          break;  // rejected: resend immediately
        }
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= until) {
        resend = true;
        t->count(TransportCounter::Timeout);
        if (backoff > 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        backoff =
            std::min(std::max(backoff, 1) * 2, opt_.wire.backoff_max_ms);
        break;
      }
      const int remaining =
          int(std::chrono::duration_cast<std::chrono::milliseconds>(until -
                                                                    now)
                  .count()) +
          1;
      RecvOutcome ro;
      {
        obs::SpanGuard wait("halo.xchg.wait", {{"rank", receiver},
                                               {"nbr", sender},
                                               {"level", lvl},
                                               {"strat", strat}});
        ro = t->recv(self, wire_in_, remaining);
      }
      if (ro == RecvOutcome::Timeout) {
        resend = true;
        t->count(TransportCounter::Timeout);
        if (backoff > 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        backoff =
            std::min(std::max(backoff, 1) * 2, opt_.wire.backoff_max_ms);
        break;
      }
      if (ro != RecvOutcome::Ok) {
        // The in-flight frame died with the link; reconnect and wait out
        // the window, then resend.
        t->count(TransportCounter::Reconnect);
        t->reconnect(self);
        continue;
      }
      WireHeader h;
      if (!decode_wire(wire_in_, h, wire_frame_)) continue;
      if (WireType(h.type) != WireType::Data) continue;  // stale control
      if (h.seq != seq || h.channel != ci) {
        // Future frame (a later self channel launched by post()): stash
        // it for the loopback that owns it. Anything older is a stale
        // leftover (e.g. flushed by an injected reset) — drop it.
        if (h.seq > seq || (h.seq == seq && h.channel > ci))
          stash_put(self, h);
        continue;
      }
      if (resil::unframe_payload(wire_frame_, ch.recv)) return;
      stats_.rejected += 1;
      OBS_COUNT("resil.halo.rejected", 1);
      break;  // rejected: resend immediately
    }
  }
  t->count(TransportCounter::PeerLost);
  throw TransportError(
      TransportError::Kind::DeliveryFailed, self,
      std::string("loopback halo channel ") + std::to_string(ci) +
          " undelivered after " + std::to_string(opt_.wire.max_attempts) +
          " attempts over " + t->name());
}

void ExchangePlan::drain(int quiet_ms) {
  Transport* t = opt_.transport;
  if (t == nullptr || t->group_size() <= 1) return;
  const int me = t->group_rank();
  auto last_traffic = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - last_traffic <
         std::chrono::milliseconds(quiet_ms)) {
    for (int peer = 0; peer < t->group_size(); ++peer) {
      if (peer == me) continue;
      if (t->recv(peer, wire_in_, 10) != RecvOutcome::Ok) continue;
      WireHeader h;
      if (!decode_wire(wire_in_, h, wire_frame_)) {
        last_traffic = std::chrono::steady_clock::now();
        continue;
      }
      // A peer already in its teardown clock sync (core/clock_sync.hpp)
      // pings member 0 while we may still be draining: answer so its burst
      // completes, but do NOT treat the Ping as wire traffic — resetting
      // the quiet timer on every probe would hold the drain open for the
      // whole sync budget.
      if (answer_ping(*t, peer, h, wire_frame_)) continue;
      last_traffic = std::chrono::steady_clock::now();
      if (WireType(h.type) != WireType::Data) continue;
      // With our schedule complete, every inbound Data frame duplicates a
      // channel we already delivered; the Ack we sent for it must have
      // been destroyed in flight — answer again so the peer can finish.
      if (h.seq < t->next_exchange_seq()) send_control(peer, WireType::Ack, h);
    }
  }
}

const PartitionData& ExchangePlan::exchange(const PartitionData& data) {
  OBS_SPAN("halo.plan.exchange");
  post(data);
  return finish();
}

void ExchangePlan::post(const PartitionData& data) {
  COLUMBIA_REQUIRE(!posted_);
  COLUMBIA_REQUIRE(index_t(data.size()) == nparts_);
  // The wire protocol needs every group member to stamp the same round
  // with the same sequence number. The injector's process-global counter
  // cannot provide that when several members share one process (the
  // threads backend): each member's exchange() would claim a different
  // value and the peers would discard each other's frames as stale. The
  // endpoint's counter is identical on every member by SPMD construction
  // (all members post the same plans in the same order), and shared across
  // the plans multiplexed over this endpoint so their rounds never collide.
  posted_seq_ = opt_.transport != nullptr
                    ? opt_.transport->take_exchange_seq()
                    : resil::FaultInjector::global().next_exchange_seq();
  posted_messages_ = stats_.messages;
  posted_bytes_ = stats_.bytes;

  // Intra-rank requests: direct shared-memory copies.
  for (const LocalCopy& c : local_)
    out_[std::size_t(c.part)][std::size_t(c.pos)] =
        data[std::size_t(c.from)][std::size_t(c.item)];

  // Gather every channel's payload (a snapshot — the caller may mutate
  // `data` the moment post() returns), then put this member's first Data
  // attempts on the wire so they fly while the caller computes. Fault
  // sites are pure in (seq, sender, receiver, attempt), so launching
  // attempt 0 early draws exactly the injections the blocking path draws.
  const std::int64_t lvl = opt_.level;
  const std::int64_t strat = strategy_id(opt_.strategy);
  bool hang_checked = false;
  for (std::size_t ci = 0; ci < channels_.size(); ++ci) {
    Channel& ch = channels_[ci];
    {
      obs::SpanGuard pack("halo.xchg.pack",
                          {{"rank", std::int64_t(ch.sender)},
                           {"nbr", std::int64_t(ch.receiver)},
                           {"level", lvl},
                           {"strat", strat},
                           {"bytes",
                            std::int64_t(ch.pack.size() * sizeof(real_t))}});
      for (std::size_t i = 0; i < ch.pack.size(); ++i)
        ch.payload[i] =
            data[std::size_t(ch.pack[i].part)][std::size_t(ch.pack[i].item)];
    }
    if (opt_.transport == nullptr) continue;
    const int me = opt_.transport->group_rank();
    const int send_member = member_of(ch.sender, true);
    const int recv_member = member_of(ch.receiver, false);
    const bool self_wire = send_member == recv_member &&
                           send_member == me && opt_.wire.loopback_self;
    if ((send_member == me && recv_member != send_member) || self_wire) {
      if (!hang_checked) {
        maybe_hang();
        hang_checked = true;
      }
      send_attempt(std::uint32_t(ci), ch, posted_seq_, 0,
                   self_wire ? me : recv_member);
    }
  }
  posted_ = true;
}

const PartitionData& ExchangePlan::finish() {
  COLUMBIA_REQUIRE(posted_);
  posted_ = false;
  const std::uint64_t seq = posted_seq_;
  const std::int64_t lvl = opt_.level;
  const std::int64_t strat = strategy_id(opt_.strategy);

  // Complete every channel in global order (the deadlock-freedom order),
  // then scatter. The sender side resumes at its ack wait (attempt 0 left
  // in post()); receivers consume stashed frames before touching the
  // wire; everyone else validates locally.
  auto complete = [&] {
    for (std::size_t ci = 0; ci < channels_.size(); ++ci) {
      Channel& ch = channels_[ci];
      if (opt_.transport == nullptr) {
        transmit(ch, seq);
      } else {
        const int me = opt_.transport->group_rank();
        const int send_member = member_of(ch.sender, true);
        const int recv_member = member_of(ch.receiver, false);
        if (send_member == recv_member) {
          if (send_member != me)
            local_validate(ch);
          else if (opt_.wire.loopback_self)
            wire_loopback(std::uint32_t(ci), ch, seq, true);
          else
            transmit(ch, seq);
        } else if (send_member == me) {
          wire_send(std::uint32_t(ci), ch, seq, true);
          // The sender's replicated out_ still needs this channel's
          // values.
          local_validate(ch);
        } else if (recv_member == me) {
          wire_recv(std::uint32_t(ci), ch, seq);
        } else {
          local_validate(ch);
        }
      }
      {
        obs::SpanGuard unpack(
            "halo.xchg.unpack",
            {{"rank", std::int64_t(ch.receiver)},
             {"nbr", std::int64_t(ch.sender)},
             {"level", lvl},
             {"strat", strat},
             {"bytes", std::int64_t(ch.unpack.size() * sizeof(real_t))}});
        for (std::size_t i = 0; i < ch.unpack.size(); ++i)
          out_[std::size_t(ch.unpack[i].part)]
              [std::size_t(ch.unpack[i].pos)] = ch.recv[i];
      }
    }
  };

  // A member outside the plan's active set never touches the wire: its
  // whole completion pass is replicated local validation, recorded as one
  // cheap park span so the observatory can price agglomerated idling.
  const bool parked =
      opt_.transport != nullptr &&
      opt_.transport->group_rank() >= std::max(recv_active(), sender_active());
  if (parked) {
    obs::SpanGuard park(
        "halo.xchg.park",
        {{"rank", std::int64_t(opt_.transport->group_rank())},
         {"level", lvl},
         {"strat", strat}});
    complete();
  } else {
    complete();
  }

  // Every channel of this round is delivered on this member; leftover
  // stash/ledger entries for it (or for any earlier round) are duplicates.
  if (opt_.transport != nullptr) purge_round(seq);

  stats_.exchanges += 1;
  OBS_COUNT("halo.plan.exchanges", 1);
  OBS_COUNT("halo.plan.messages", stats_.messages - posted_messages_);
  OBS_COUNT("halo.plan.bytes", stats_.bytes - posted_bytes_);
  return out_;
}

index_t ExchangePlan::ghost_items(index_t part) const {
  return ghost_items_[std::size_t(part)];
}

index_t ExchangePlan::neighbor_count(index_t part) const {
  return neighbor_count_[std::size_t(part)];
}

index_t ExchangePlan::max_ghost_items() const {
  index_t m = 0;
  for (index_t g : ghost_items_) m = std::max(m, g);
  return m;
}

index_t ExchangePlan::total_ghost_items() const {
  index_t t = 0;
  for (index_t g : ghost_items_) t += g;
  return t;
}

index_t ExchangePlan::max_neighbors() const {
  index_t m = 0;
  for (index_t d : neighbor_count_) m = std::max(m, d);
  return m;
}

std::uint64_t ExchangePlan::payload_bytes_per_exchange() const {
  std::uint64_t b = 0;
  for (const Channel& ch : channels_)
    b += std::uint64_t(ch.pack.size()) * sizeof(real_t);
  return b;
}

}  // namespace columbia::core
