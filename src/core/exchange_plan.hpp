// Persistent halo-exchange schedules (paper Figs. 6-7; FASTEST-3D-style
// precomputed communication).
//
// The smp::hybrid strategies re-derive every pack list and reallocate
// every buffer on each call — fine for validating the protocol, wrong for
// a steady-state solver that exchanges the same halo thousands of times.
// An ExchangePlan is built once per (partitioning, strategy): it
// precomputes the per-neighbor message layouts (pack gather lists, unpack
// scatter slots, intra-rank copies) and owns persistent send/receive
// buffers sized at build, so steady-state exchanges perform ZERO heap
// allocations (asserted in tests/test_core.cpp).
//
// Both hybrid strategies of paper Fig. 7 are plan policies:
//
//   ThreadToThread (Fig. 7a): every partition is its own rank; one
//     message per communicating partition pair.
//   MasterThread (Fig. 7b): partitions are grouped into "processes" of
//     threads_per_process; values bound for a remote process travel in
//     one packed message and are scattered to the local partitions'
//     request slots. Fewer, larger messages — NSU3D's strategy.
//
// Resilience semantics match smp::exchange_* exactly: every message
// travels in a checksummed frame ([count, crc32, payload...]); faulted
// frames (COLUMBIA_FAULTS halo_corrupt / halo_drop) are rejected and
// retransmitted, bounded by the same attempt cap and drawing the same
// deterministic fault sites halo_site(seq, sender, receiver, attempt).
// Delivered values are therefore bit-identical to the legacy API with
// fault injection on or off (tests/test_core.cpp pins this down).
#pragma once

#include <cstdint>

#include "core/halo.hpp"

namespace columbia::core {

enum class ExchangeStrategy { ThreadToThread, MasterThread };

struct ExchangePlanOptions {
  ExchangeStrategy strategy = ExchangeStrategy::ThreadToThread;
  /// Partitions per process (MasterThread only; must divide the partition
  /// count). ThreadToThread behaves as threads_per_process == 1.
  int threads_per_process = 1;
  /// Multigrid level tag stamped on the plan's halo.xchg spans so the comm
  /// observatory can attribute waits per level; -1 = untagged.
  int level = -1;
};

/// Stable strategy id used as the "strat" span attribute (0 = t2t,
/// 1 = master) — the comm observatory's grouping key.
inline int strategy_id(ExchangeStrategy s) {
  return s == ExchangeStrategy::MasterThread ? 1 : 0;
}

/// Cumulative transport counters across all exchanges of one plan. The
/// plan moves values by direct copy rather than through smp mailboxes, so
/// it keeps its own ledger (mirroring smp::TrafficStats accounting:
/// retransmitted frames count as extra messages/bytes).
struct ExchangeStats {
  std::uint64_t exchanges = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;       // framed wire bytes
  std::uint64_t retransmits = 0;
  std::uint64_t rejected = 0;
};

class ExchangePlan {
 public:
  ExchangePlan(RequestLists requests, ExchangePlanOptions options = {});

  /// Fetches every requested value; the result is parallel to each
  /// partition's request list and owned by the plan (valid until the next
  /// exchange). Performs no heap allocation.
  const PartitionData& exchange(const PartitionData& data);

  index_t num_partitions() const { return nparts_; }
  ExchangeStrategy strategy() const { return opt_.strategy; }
  int threads_per_process() const { return opt_.threads_per_process; }
  const RequestLists& requests() const { return requests_; }
  const ExchangeStats& stats() const { return stats_; }

  // --- Schedule statistics (partition granularity, strategy-independent;
  // the perf machine model consumes these via perf::stats_from_plan) ---

  /// Requested values owned by another partition.
  index_t ghost_items(index_t part) const;
  /// Distinct other partitions `part` requests from.
  index_t neighbor_count(index_t part) const;
  index_t max_ghost_items() const;
  index_t total_ghost_items() const;
  index_t max_neighbors() const;

  /// Wire cost of one steady-state (fault-free) exchange.
  std::uint64_t messages_per_exchange() const {
    return std::uint64_t(channels_.size());
  }
  std::uint64_t payload_bytes_per_exchange() const;

 private:
  /// One directed rank-to-rank message: gather list, persistent wire
  /// buffers, scatter slots. pack[i] feeds unpack[i].
  struct Channel {
    index_t sender = 0;    // rank id (partition or process)
    index_t receiver = 0;
    struct Source {
      index_t part, item;
    };
    struct Slot {
      index_t part, pos;  // destination request-list slot
    };
    std::vector<Source> pack;
    std::vector<Slot> unpack;
    std::vector<real_t> payload;  // packed values (persistent)
    std::vector<real_t> frame;    // checksummed wire frame (persistent)
    std::vector<real_t> recv;     // validated receiver payload (persistent)
  };

  /// Intra-rank request served by direct copy (shared memory).
  struct LocalCopy {
    index_t part, pos, from, item;
  };

  void transmit(Channel& ch, std::uint64_t seq);

  RequestLists requests_;
  ExchangePlanOptions opt_;
  index_t nparts_ = 0;
  std::vector<Channel> channels_;  // (sender, receiver) ascending
  std::vector<LocalCopy> local_;
  PartitionData out_;
  ExchangeStats stats_;
  std::vector<index_t> ghost_items_;     // per partition
  std::vector<index_t> neighbor_count_;  // per partition
};

}  // namespace columbia::core
