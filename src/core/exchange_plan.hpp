// Persistent halo-exchange schedules (paper Figs. 6-7; FASTEST-3D-style
// precomputed communication).
//
// The smp::hybrid strategies re-derive every pack list and reallocate
// every buffer on each call — fine for validating the protocol, wrong for
// a steady-state solver that exchanges the same halo thousands of times.
// An ExchangePlan is built once per (partitioning, strategy): it
// precomputes the per-neighbor message layouts (pack gather lists, unpack
// scatter slots, intra-rank copies) and owns persistent send/receive
// buffers sized at build, so steady-state exchanges perform ZERO heap
// allocations (asserted in tests/test_core.cpp).
//
// Both hybrid strategies of paper Fig. 7 are plan policies:
//
//   ThreadToThread (Fig. 7a): every partition is its own rank; one
//     message per communicating partition pair.
//   MasterThread (Fig. 7b): partitions are grouped into "processes" of
//     threads_per_process; values bound for a remote process travel in
//     one packed message and are scattered to the local partitions'
//     request slots. Fewer, larger messages — NSU3D's strategy.
//
// Resilience semantics match smp::exchange_* exactly: every message
// travels in a checksummed frame ([count, crc32, payload...]); faulted
// frames (COLUMBIA_FAULTS halo_corrupt / halo_drop) are rejected and
// retransmitted, bounded by the same attempt cap and drawing the same
// deterministic fault sites halo_site(seq, sender, receiver, attempt).
// Delivered values are therefore bit-identical to the legacy API with
// fault injection on or off (tests/test_core.cpp pins this down).
// Multi-process execution (this PR's transport seam): attaching a
// core::Transport to the options turns the plan into one member's view of
// a process group. Every member runs the same schedule over replicated
// data; a channel whose endpoints map to different members moves its frame
// over the real wire (shared-memory ring, TCP socket, ...) with per-message
// deadlines, bounded exponential-backoff retransmission, reconnects after
// resets, and peer-loss detection — while members not on the channel
// validate the frame locally, so out_ is complete and bit-identical on
// every member regardless of backend or injected transport faults.
#pragma once

#include <cstdint>

#include "core/halo.hpp"
#include "core/transport.hpp"

namespace columbia::core {

enum class ExchangeStrategy { ThreadToThread, MasterThread };

/// Failure-handling knobs of the wire protocol (only meaningful when a
/// Transport is attached).
struct WireOptions {
  int deadline_ms = 100;    // per-attempt ACK/DATA wait
  int max_attempts = 8;     // retransmit budget per message
  int backoff_base_ms = 1;  // exponential backoff after a timeout
  int backoff_max_ms = 16;
  /// Route channels whose endpoints both map to this member over the wire
  /// anyway (send-to-self). The loopback harness: real rings/sockets,
  /// deterministic single-process execution — how the protocol tests and
  /// the retransmit-ledger checks drive every backend.
  bool loopback_self = false;
};

struct ExchangePlanOptions {
  ExchangeStrategy strategy = ExchangeStrategy::ThreadToThread;
  /// Partitions per process (MasterThread only; must divide the partition
  /// count). ThreadToThread behaves as threads_per_process == 1.
  int threads_per_process = 1;
  /// Multigrid level tag stamped on the plan's halo.xchg spans so the comm
  /// observatory can attribute waits per level; -1 = untagged.
  int level = -1;
  /// Wire backend for cross-member channels; nullptr keeps the in-process
  /// thread transport (both frame endpoints on the calling thread). The
  /// plan maps channel rank r to group member r % group_size.
  Transport* transport = nullptr;
  WireOptions wire;
  /// Coarse-level rank agglomeration (paper Fig. 19): when > 0, channel
  /// ranks map onto the first `active_members` group members only
  /// (r % active_members instead of r % group_size). Members outside the
  /// active set never touch the wire for this plan — they park, filling
  /// their replicated out_ by local validation — so a level whose
  /// partitions are tiny stops paying per-message wire latency on every
  /// rank. 0 = all members active. Clamped to group_size.
  int active_members = 0;
  /// For inter-level transfer plans bridging two different active sets
  /// (restriction/prolongation between a full-rank fine level and an
  /// agglomerated coarse level): sender-side ranks map through this count
  /// while receiver-side ranks map through active_members. 0 = same as
  /// active_members.
  int sender_active_members = 0;
};

/// Stable strategy id used as the "strat" span attribute (0 = t2t,
/// 1 = master) — the comm observatory's grouping key.
inline int strategy_id(ExchangeStrategy s) {
  return s == ExchangeStrategy::MasterThread ? 1 : 0;
}

/// Cumulative transport counters across all exchanges of one plan. The
/// plan moves values by direct copy rather than through smp mailboxes, so
/// it keeps its own ledger (mirroring smp::TrafficStats accounting:
/// retransmitted frames count as extra messages/bytes).
struct ExchangeStats {
  std::uint64_t exchanges = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;       // framed wire bytes
  std::uint64_t retransmits = 0;
  std::uint64_t rejected = 0;
};

class ExchangePlan {
 public:
  ExchangePlan(RequestLists requests, ExchangePlanOptions options = {});

  /// Fetches every requested value; the result is parallel to each
  /// partition's request list and owned by the plan (valid until the next
  /// exchange). Performs no heap allocation. Exactly post() + finish(),
  /// so blocking call sites and the split overlap path share one code
  /// path and stay bit-identical by construction.
  const PartitionData& exchange(const PartitionData& data);

  /// Split exchange, begin half: snapshots `data` into the per-channel
  /// payloads (pack gathers + intra-rank copies) and launches the first
  /// wire attempt of every channel this member sends — then returns, so
  /// the caller can compute interior work while the frames are in flight.
  /// `data` may be mutated freely after post() returns.
  void post(const PartitionData& data);

  /// Split exchange, end half: runs the retransmit/ack protocol to
  /// completion for every channel (receives, validates, re-sends as
  /// needed) and scatters the delivered values. Returns the same
  /// reference exchange() does. Requires a matching post().
  const PartitionData& finish();

  /// True between post() and finish().
  bool posted() const { return posted_; }

  /// Group-exit grace period (no-op without a transport or alone in the
  /// group): keeps answering peers' duplicate Data frames with Acks until
  /// the wire has been quiet for `quiet_ms`. A member that finishes its
  /// schedule and exits immediately can strand a peer whose final Ack was
  /// destroyed in flight (e.g. by an injected conn_reset): the peer
  /// retransmits into a void forever. Call this after the last exchange,
  /// before tearing the member down.
  void drain(int quiet_ms = 300);

  index_t num_partitions() const { return nparts_; }
  ExchangeStrategy strategy() const { return opt_.strategy; }
  int threads_per_process() const { return opt_.threads_per_process; }
  const RequestLists& requests() const { return requests_; }
  const ExchangeStats& stats() const { return stats_; }

  // --- Schedule statistics (partition granularity, strategy-independent;
  // the perf machine model consumes these via perf::stats_from_plan) ---

  /// Requested values owned by another partition.
  index_t ghost_items(index_t part) const;
  /// Distinct other partitions `part` requests from.
  index_t neighbor_count(index_t part) const;
  index_t max_ghost_items() const;
  index_t total_ghost_items() const;
  index_t max_neighbors() const;

  /// Wire cost of one steady-state (fault-free) exchange.
  std::uint64_t messages_per_exchange() const {
    return std::uint64_t(channels_.size());
  }
  std::uint64_t payload_bytes_per_exchange() const;

 private:
  /// One directed rank-to-rank message: gather list, persistent wire
  /// buffers, scatter slots. pack[i] feeds unpack[i].
  struct Channel {
    index_t sender = 0;    // rank id (partition or process)
    index_t receiver = 0;
    struct Source {
      index_t part, item;
    };
    struct Slot {
      index_t part, pos;  // destination request-list slot
    };
    std::vector<Source> pack;
    std::vector<Slot> unpack;
    std::vector<real_t> payload;  // packed values (persistent)
    std::vector<real_t> frame;    // checksummed wire frame (persistent)
    std::vector<real_t> recv;     // validated receiver payload (persistent)
  };

  /// Intra-rank request served by direct copy (shared memory).
  struct LocalCopy {
    index_t part, pos, from, item;
  };

  void transmit(Channel& ch, std::uint64_t seq);

  // --- Wire path (transport attached) ---
  //
  // Channel rank -> group member. Members run the identical schedule over
  // replicated data; per channel exactly one member sends on the wire and
  // one receives (wire_loopback when they coincide and loopback_self is
  // set), everyone else validates the frame locally so out_ is complete
  // and bit-identical on every member. Agglomerated plans shrink the
  // member images: sender ranks map through sender_active(), receiver
  // ranks through recv_active().
  int recv_active() const;
  int sender_active() const;
  int member_of(index_t rank, bool sender_side) const;
  /// One Data attempt of a channel: frame, draw the deterministic fault
  /// sites, encode, put on the wire, account. Shared by wire_send,
  /// wire_loopback and the early attempt-0 launch in post().
  void send_attempt(std::uint32_t ci, Channel& ch, std::uint64_t seq,
                    int attempt, int peer);
  /// `first_sent`: attempt 0 already left in post(); start the protocol at
  /// the ack wait instead of re-sending it.
  void wire_send(std::uint32_t ci, Channel& ch, std::uint64_t seq,
                 bool first_sent);
  void wire_recv(std::uint32_t ci, Channel& ch, std::uint64_t seq);
  void wire_loopback(std::uint32_t ci, Channel& ch, std::uint64_t seq,
                     bool first_sent);
  void local_validate(Channel& ch);
  /// COLUMBIA_FAULTS peer_hang check (site = this member's group rank).
  void maybe_hang();
  void note_retransmit(const Channel& ch);
  enum class Await { Acked, Nacked, Timeout, Reset, PeerGone };
  /// `heard_peer` is set when any decodable frame from the peer arrived in
  /// the window — proof of liveness. A timed-out window that heard the
  /// peer does NOT consume the sender's retransmit budget: the peer is
  /// alive but behind in the schedule (e.g. serially recovering a burst of
  /// reset-flushed acks), and charging attempts against its catch-up time
  /// turns bounded skew into a spurious PeerLost.
  Await await_ack(int peer, std::uint64_t seq, std::uint32_t ci,
                  int deadline_ms, bool& heard_peer);
  void send_control(int peer, WireType type, const WireHeader& data_header);

  // --- Reorder stash (storage lives on the Transport endpoint) ---
  //
  // post() launches every outbound attempt-0 frame before anyone starts
  // receiving, so a member routinely pulls Data for a channel it has not
  // reached yet while waiting on an earlier one. Dropping such frames (the
  // pre-split behavior) would force a full deadline timeout + retransmit
  // per reordering; instead they are stashed — un-acked, so the protocol
  // state machine is unchanged — and the owning wire_recv/wire_loopback
  // consumes them before touching the wire. The stash (and the exchange
  // sequence counter that keys it) belongs to the Transport, not the plan:
  // several plans multiplex one endpoint (per-level halo plans plus
  // inter-level transfer plans), and a frame for plan A often lands while
  // plan B holds the wire — it must be parked where A will find it.
  // Entries are recycled (bounded by the live channel count across plans)
  // and later attempts of the same channel overwrite earlier ones, since
  // only the final attempt is guaranteed clean.
  void stash_put(int peer, const WireHeader& h);
  bool stash_take(int peer, std::uint64_t seq, std::uint32_t ci,
                  WireHeader& h);
  // Ack-ledger companions (storage on the Transport, see ack_ledger()):
  // acks addressed to channels this member has posted but whose wire_send
  // has not started yet are recorded, not dropped.
  void ack_put(int peer, const WireHeader& h);
  bool ack_take(int peer, std::uint64_t seq, std::uint32_t ci);
  /// Drops stash/ledger leftovers of a completed round (<= seq): every
  /// channel of that round is delivered on this member, so anything still
  /// parked for it is a duplicate. Keeps both pools bounded by the live
  /// in-flight rounds.
  void purge_round(std::uint64_t seq);

  RequestLists requests_;
  ExchangePlanOptions opt_;
  index_t nparts_ = 0;
  std::vector<Channel> channels_;  // (sender, receiver) ascending
  std::vector<LocalCopy> local_;
  PartitionData out_;
  ExchangeStats stats_;
  std::vector<index_t> ghost_items_;     // per partition
  std::vector<index_t> neighbor_count_;  // per partition
  // Wire scratch (persistent; capacity reused so steady-state wire
  // exchanges allocate nothing once warmed up; untouched without a
  // transport).
  std::vector<std::uint8_t> wire_out_;
  std::vector<std::uint8_t> wire_in_;
  std::vector<std::uint8_t> wire_ctl_;
  std::vector<real_t> wire_frame_;
  // Wire-path exchange sequencing is endpoint-wide: post() draws from
  // Transport::take_exchange_seq() (not the injector's global counter) so
  // every group member stamps round k of the same plan with the same
  // value even when members share a process (the threads backend), and
  // rounds of different plans on one endpoint never collide.
  // Split-exchange state carried from post() to finish().
  bool posted_ = false;
  std::uint64_t posted_seq_ = 0;
  std::uint64_t posted_messages_ = 0;
  std::uint64_t posted_bytes_ = 0;
};

}  // namespace columbia::core
