// NTP-style steady-clock synchronization over the Transport seam.
//
// Forked rank processes each pin a private trace epoch, so their telemetry
// shards cannot be merged onto one timeline by timestamp alone. This
// module estimates every member's steady-clock offset against member 0
// with the classic four-timestamp exchange: the client stamps t0 when a
// Ping leaves, the server stamps t1 on receipt and t2 when the Pong goes
// back, the client stamps t3 on return, and
//
//   offset = ((t1 - t0) + (t2 - t3)) / 2      (server clock - client clock)
//   rtt    = (t3 - t0) - (t2 - t1)
//
// Server processing time cancels out of the offset, so a busy member 0
// polling many clients round-robin does not bias the estimate; asymmetric
// path delay does, which is why the estimate is taken from the minimum-RTT
// sample of a burst (the sample least contaminated by queueing).
//
// The handshake runs at group start and again at teardown (process_group
// child_main), bounding drift over the run; both estimates land in the
// telemetry shard header and the offline merger applies them. Every loop
// is budget-bounded: a dead or hung peer costs the budget, never a hang —
// the group watchdog stays the only failure detector.
//
// On a single host CLOCK_MONOTONIC is machine-wide, so measured offsets
// are near zero (the RTT floor is the resolution limit); the machinery
// exists for the multi-host TCP story and is pinned by synthetic-skew unit
// fixtures either way.
#pragma once

#include <cstdint>
#include <vector>

#include "core/transport.hpp"

namespace columbia::core {

/// One completed four-timestamp exchange, client-side steady-clock ns for
/// t0/t3 and server-side for t1/t2.
struct ClockSample {
  std::int64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;

  std::int64_t offset_ns() const { return ((t1 - t0) + (t2 - t3)) / 2; }
  std::int64_t rtt_ns() const { return (t3 - t0) - (t2 - t1); }
};

struct ClockEstimate {
  /// Server clock minus local clock: add to a local timestamp to express
  /// it on the server's (member 0's) clock. 0 for member 0 itself.
  std::int64_t offset_ns = 0;
  /// Round-trip of the minimum-RTT sample the offset was taken from.
  std::int64_t rtt_ns = 0;
  int samples = 0;     // accepted samples in the burst
  bool synced = false; // at least one sample with a non-negative rtt
};

/// Pure min-RTT estimator over a burst (unit-test fixture surface):
/// discards samples with negative rtt (clock stepped mid-exchange), takes
/// offset and rtt from the minimum-rtt survivor.
ClockEstimate estimate_clock_offset(const std::vector<ClockSample>& samples);

struct ClockSyncOptions {
  int pings = 8;           // burst size per client
  int ping_deadline_ms = 25;   // wait for one Pong
  int ping_attempts = 3;       // resends of one Ping before moving on
  int budget_ms = 1500;        // hard cap for the whole client burst
  int server_quiet_ms = 300;   // server exits after this long without a Ping
  int server_budget_ms = 3000; // hard cap for the whole serving window
};

/// Client side (members != 0): runs the burst against member 0 and returns
/// the estimate. Never throws and never blocks past the budget; an
/// unreachable server yields synced == false. Stray Data frames observed
/// while waiting for Pongs are re-acknowledged when they duplicate an
/// already-delivered exchange, so teardown sync cannot strand a peer that
/// lost our final Ack.
ClockEstimate sync_clock_client(Transport& t, const ClockSyncOptions& opt = {});

/// Server side (member 0): answers Pings from every other member until
/// each has been served `opt.pings` Pongs, the quiet window elapses with
/// no traffic, or the budget runs out. Returns the identity estimate
/// (offset 0, synced) — member 0 defines the group clock.
ClockEstimate sync_clock_server(Transport& t, const ClockSyncOptions& opt = {});

/// Dispatches on rank: member 0 serves, everyone else runs the burst.
/// Single-member groups return the identity estimate immediately.
ClockEstimate sync_group_clock(Transport& t, const ClockSyncOptions& opt = {});

/// Answers one already-decoded Ping datagram with a Pong (used by
/// ExchangePlan::drain, whose mailbox sweep may intercept a peer's
/// teardown-sync Pings before the local member reaches its own sync).
/// Returns false if the datagram is not a Ping.
bool answer_ping(Transport& t, int peer, const WireHeader& h,
                 const std::vector<real_t>& frame);

}  // namespace columbia::core
