#include "core/transport.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace columbia::core {

const char* transport_backend_name(TransportBackend b) {
  switch (b) {
    case TransportBackend::Local: return "local";
    case TransportBackend::Shm: return "shm";
    case TransportBackend::Tcp: return "tcp";
  }
  return "?";
}

const char* transport_counter_name(TransportCounter c) {
  switch (c) {
    case TransportCounter::Timeout: return "timeout";
    case TransportCounter::Retransmit: return "retransmit";
    case TransportCounter::Reconnect: return "reconnect";
    case TransportCounter::PeerLost: return "peer_lost";
    case TransportCounter::Heartbeat: return "heartbeat";
  }
  return "?";
}

void Transport::count(TransportCounter c, std::uint64_t n) {
  counters_.v[std::size_t(c)] += n;
  switch (c) {
    case TransportCounter::Timeout: OBS_COUNT("resil.transport.timeout", n); break;
    case TransportCounter::Retransmit:
      OBS_COUNT("resil.transport.retransmit", n);
      break;
    case TransportCounter::Reconnect:
      OBS_COUNT("resil.transport.reconnect", n);
      break;
    case TransportCounter::PeerLost:
      OBS_COUNT("resil.transport.peer_lost", n);
      break;
    case TransportCounter::Heartbeat:
      OBS_COUNT("resil.transport.heartbeat", n);
      break;
  }
  if (sink_) sink_(c, n);
}

void Transport::enter_hang() {
  notify_hang();
  // A hung peer does nothing observable: no exit, no final message. Only
  // the launcher's failure detector (stalled heartbeat counter) ends this.
  for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

// --- Wire codec -------------------------------------------------------------

void encode_wire(const WireHeader& h, std::span<const real_t> frame,
                 std::vector<std::uint8_t>& out) {
  out.resize(kWireHeaderBytes + frame.size() * sizeof(real_t));
  std::memcpy(out.data(), &h.seq, 8);
  std::memcpy(out.data() + 8, &h.channel, 4);
  std::memcpy(out.data() + 12, &h.type, 2);
  std::memcpy(out.data() + 14, &h.attempt, 2);
  if (!frame.empty())
    std::memcpy(out.data() + kWireHeaderBytes, frame.data(),
                frame.size() * sizeof(real_t));
}

bool decode_wire(std::span<const std::uint8_t> datagram, WireHeader& h,
                 std::vector<real_t>& frame) {
  if (datagram.size() < kWireHeaderBytes) return false;
  std::memcpy(&h.seq, datagram.data(), 8);
  std::memcpy(&h.channel, datagram.data() + 8, 4);
  std::memcpy(&h.type, datagram.data() + 12, 2);
  std::memcpy(&h.attempt, datagram.data() + 14, 2);
  const std::size_t body = datagram.size() - kWireHeaderBytes;
  if (body % sizeof(real_t) != 0) return false;
  frame.resize(body / sizeof(real_t));
  if (body != 0)
    std::memcpy(frame.data(), datagram.data() + kWireHeaderBytes, body);
  return true;
}

// --- LocalTransport ---------------------------------------------------------

namespace {

class LocalTransport final : public Transport {
 public:
  LocalTransport(LocalGroup* group, int rank) : group_(group), rank_(rank) {}

  TransportBackend backend() const override { return TransportBackend::Local; }
  int group_rank() const override { return rank_; }
  int group_size() const override { return group_->size(); }

  bool send(int to, std::span<const std::uint8_t> datagram) override {
    COLUMBIA_REQUIRE(to >= 0 && to < group_->size());
    LocalGroup::Pair& p = group_->pair(rank_, to);
    {
      std::lock_guard<std::mutex> lock(p.mu);
      p.q.emplace_back(datagram.begin(), datagram.end());
    }
    p.cv.notify_all();
    return true;
  }

  RecvOutcome recv(int from, std::vector<std::uint8_t>& datagram,
                   int deadline_ms) override {
    COLUMBIA_REQUIRE(from >= 0 && from < group_->size());
    LocalGroup::Pair& p = group_->pair(from, rank_);
    std::unique_lock<std::mutex> lock(p.mu);
    if (!p.cv.wait_for(lock, std::chrono::milliseconds(deadline_ms),
                       [&] { return !p.q.empty(); }))
      return RecvOutcome::Timeout;
    datagram = std::move(p.q.front());
    p.q.pop_front();
    return RecvOutcome::Ok;
  }

  /// Single-process tests cannot watchdog-kill a genuinely hung thread;
  /// surface the injected hang as the error the launcher path would
  /// eventually produce.
  void enter_hang() override {
    notify_hang();
    count(TransportCounter::PeerLost);
    throw TransportError(TransportError::Kind::PeerLost, rank_,
                         "injected peer_hang on rank " +
                             std::to_string(rank_));
  }

 private:
  LocalGroup* group_;
  int rank_;
};

}  // namespace

LocalGroup::LocalGroup(int size)
    : size_(size), pairs_(std::size_t(size) * std::size_t(size)) {
  COLUMBIA_REQUIRE(size >= 1);
}

std::unique_ptr<Transport> LocalGroup::endpoint(int rank) {
  COLUMBIA_REQUIRE(rank >= 0 && rank < size_);
  return std::make_unique<LocalTransport>(this, rank);
}

}  // namespace columbia::core
