// Halo-exchange request vocabulary shared by the solver layers.
//
// A P-way decomposition describes its communication needs as request
// lists: for each partition, the ordered list of (owner partition, item)
// pairs it wants fetched every exchange. The smp::hybrid strategies and
// core::ExchangePlan both consume this shape; smp aliases these types so
// existing call sites keep compiling.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace columbia::core {

/// One item a partition needs from another partition.
struct HaloRequest {
  index_t from_partition;
  index_t item;  // index into the owner partition's data array
};

/// Inputs: per-partition owned data and per-partition request lists.
/// Output: fetched values, parallel to each partition's request list.
using PartitionData = std::vector<std::vector<real_t>>;
using RequestLists = std::vector<std::vector<HaloRequest>>;

}  // namespace columbia::core
