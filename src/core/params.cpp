#include "core/params.hpp"

namespace columbia::core {

namespace {

// Mirrors MultigridDriver::mg_cycle's descent exactly: one visit per call,
// two recursions into the next level for W-cycles unless that level is the
// coarsest.
void descend(std::vector<index_t>& v, int nl, CycleType cycle, int level) {
  v[std::size_t(level)] += 1;
  if (level + 1 >= nl) return;
  const int reps = (cycle == CycleType::W && level + 2 < nl) ? 2 : 1;
  for (int r = 0; r < reps; ++r) descend(v, nl, cycle, level + 1);
}

}  // namespace

std::vector<index_t> cycle_visits(int num_levels, CycleType cycle) {
  std::vector<index_t> visits(std::size_t(num_levels), 0);
  if (num_levels > 0) descend(visits, num_levels, cycle, 0);
  return visits;
}

}  // namespace columbia::core
