#include "core/clock_sync.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

#include "support/timer.hpp"

namespace columbia::core {

namespace {

static_assert(sizeof(real_t) == sizeof(std::int64_t),
              "clock-sync timestamps ride the real_t frame payload");

using Clock = std::chrono::steady_clock;

std::int64_t now_ns() { return std::int64_t(WallTimer::now_ns()); }

real_t pack_ts(std::int64_t ns) { return std::bit_cast<real_t>(ns); }
std::int64_t unpack_ts(real_t w) { return std::bit_cast<std::int64_t>(w); }

int elapsed_ms(Clock::time_point since) {
  return int(std::chrono::duration_cast<std::chrono::milliseconds>(
                 Clock::now() - since)
                 .count());
}

void send_datagram(Transport& t, int peer, const WireHeader& h,
                   std::span<const real_t> frame,
                   std::vector<std::uint8_t>& scratch) {
  encode_wire(h, frame, scratch);
  // Lost sends resolve like lost datagrams: the other side retries or
  // gives up within its budget. No reconnect dance on this side channel.
  (void)t.send(peer, scratch);
}

/// Duplicate Data observed while the sync side channel owns the mailbox:
/// re-acknowledge it exactly the way drain() does, so a peer whose final
/// Ack was destroyed is not stranded retransmitting into the sync window.
void reack_stale_data(Transport& t, int peer, const WireHeader& h,
                      std::vector<std::uint8_t>& scratch) {
  if (WireType(h.type) != WireType::Data) return;
  if (h.seq >= t.next_exchange_seq()) return;
  WireHeader ack = h;
  ack.type = std::uint16_t(WireType::Ack);
  send_datagram(t, peer, ack, {}, scratch);
}

}  // namespace

ClockEstimate estimate_clock_offset(const std::vector<ClockSample>& samples) {
  ClockEstimate est;
  const ClockSample* best = nullptr;
  for (const ClockSample& s : samples) {
    if (s.rtt_ns() < 0) continue;  // clock stepped mid-exchange; unusable
    ++est.samples;
    if (best == nullptr || s.rtt_ns() < best->rtt_ns()) best = &s;
  }
  if (best != nullptr) {
    est.offset_ns = best->offset_ns();
    est.rtt_ns = best->rtt_ns();
    est.synced = true;
  }
  return est;
}

bool answer_ping(Transport& t, int peer, const WireHeader& h,
                 const std::vector<real_t>& frame) {
  if (WireType(h.type) != WireType::Ping || frame.empty()) return false;
  const std::int64_t t1 = now_ns();
  WireHeader ph = h;
  ph.type = std::uint16_t(WireType::Pong);
  const real_t payload[3] = {frame[0], pack_ts(t1), pack_ts(now_ns())};
  std::vector<std::uint8_t> scratch;
  send_datagram(t, peer, ph, payload, scratch);
  return true;
}

ClockEstimate sync_clock_client(Transport& t, const ClockSyncOptions& opt) {
  const int me = t.group_rank();
  std::vector<std::uint8_t> scratch;
  std::vector<std::uint8_t> in;
  std::vector<real_t> frame;
  std::vector<ClockSample> samples;
  const auto start = Clock::now();

  for (int k = 0; k < opt.pings; ++k) {
    bool got = false;
    for (int attempt = 0; attempt < opt.ping_attempts && !got; ++attempt) {
      if (elapsed_ms(start) >= opt.budget_ms) break;
      WireHeader h;
      h.seq = std::uint64_t(k);
      h.channel = std::uint32_t(me);
      h.type = std::uint16_t(WireType::Ping);
      h.attempt = std::uint16_t(attempt);
      const real_t payload[1] = {pack_ts(now_ns())};
      send_datagram(t, 0, h, payload, scratch);

      const auto until =
          Clock::now() + std::chrono::milliseconds(opt.ping_deadline_ms);
      while (!got) {
        const auto now = Clock::now();
        if (now >= until || elapsed_ms(start) >= opt.budget_ms) break;
        const int remaining =
            int(std::chrono::duration_cast<std::chrono::milliseconds>(until -
                                                                      now)
                    .count()) +
            1;
        if (t.recv(0, in, remaining) != RecvOutcome::Ok) break;
        WireHeader rh;
        if (!decode_wire(in, rh, frame)) continue;
        if (WireType(rh.type) == WireType::Pong && rh.channel == std::uint32_t(me) &&
            rh.seq == std::uint64_t(k) && frame.size() >= 3) {
          // A Pong for an earlier attempt of this probe is still a valid
          // sample: it echoes the t0 it was pinged with.
          ClockSample s;
          s.t0 = unpack_ts(frame[0]);
          s.t1 = unpack_ts(frame[1]);
          s.t2 = unpack_ts(frame[2]);
          s.t3 = now_ns();
          samples.push_back(s);
          got = true;
          continue;
        }
        reack_stale_data(t, 0, rh, scratch);
      }
    }
    if (elapsed_ms(start) >= opt.budget_ms) break;
  }
  return estimate_clock_offset(samples);
}

ClockEstimate sync_clock_server(Transport& t, const ClockSyncOptions& opt) {
  const int n = t.group_size();
  std::vector<int> served(std::size_t(n), 0);
  std::vector<std::uint8_t> scratch;
  std::vector<std::uint8_t> in;
  std::vector<real_t> frame;
  const auto start = Clock::now();
  auto last_traffic = start;

  auto all_served = [&] {
    for (int p = 0; p < n; ++p)
      if (p != t.group_rank() && served[std::size_t(p)] < opt.pings)
        return false;
    return true;
  };

  while (!all_served() && elapsed_ms(start) < opt.server_budget_ms &&
         elapsed_ms(last_traffic) < opt.server_quiet_ms) {
    for (int peer = 0; peer < n; ++peer) {
      if (peer == t.group_rank()) continue;
      if (t.recv(peer, in, 5) != RecvOutcome::Ok) continue;
      last_traffic = Clock::now();
      WireHeader h;
      if (!decode_wire(in, h, frame)) continue;
      if (answer_ping(t, peer, h, frame)) {
        served[std::size_t(peer)] += 1;
        continue;
      }
      reack_stale_data(t, peer, h, scratch);
    }
  }

  ClockEstimate est;
  est.synced = true;  // member 0 defines the group clock
  return est;
}

ClockEstimate sync_group_clock(Transport& t, const ClockSyncOptions& opt) {
  if (t.group_size() <= 1) {
    ClockEstimate est;
    est.synced = true;
    return est;
  }
  return t.group_rank() == 0 ? sync_clock_server(t, opt)
                             : sync_clock_client(t, opt);
}

}  // namespace columbia::core
