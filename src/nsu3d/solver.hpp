// NSU3D-style solver: node-centered, edge-based finite-volume RANS with
// line-implicit agglomeration multigrid.
//
// Mirrors the paper's Sec. III: six unknowns per grid point (density,
// momentum, energy, Spalart-Allmaras working variable) solved in coupled
// form; second-order upwind convection on the fine grid; edge-based viscous
// operator; local block-implicit (6x6) solves at each point, upgraded to
// block-tridiagonal line solves in stretched boundary-layer regions; FAS
// agglomeration multigrid with V- or W-cycles (W preferred, Fig. 4).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "core/multigrid.hpp"
#include "core/params.hpp"
#include "euler/flux.hpp"
#include "euler/state.hpp"
#include "linalg/block.hpp"
#include "nsu3d/kernels.hpp"
#include "nsu3d/level.hpp"
#include "resil/checkpoint.hpp"
#include "resil/guard.hpp"
#include "support/types.hpp"

namespace columbia::nsu3d {

/// Conservative state per node: [rho, rho u, rho v, rho w, rho E, rho nu~].
using State = std::array<real_t, 6>;

using CycleType = core::CycleType;  // shared cycle vocabulary (core/)
enum class SmootherKind { PointImplicit, LineImplicit };

/// Cycle-control fields (mg_levels, cycle, cfl, smoothing steps,
/// correction damping, second_order) live in core::SolveParams; only the
/// RANS-specific knobs are added here.
struct Nsu3dOptions : core::SolveParams {
  Nsu3dOptions() {
    mg_levels = 4;
    cfl = 20.0;  // implicit smoothing tolerates large CFL
  }
  SmootherKind smoother = SmootherKind::LineImplicit;
  euler::FluxScheme flux = euler::FluxScheme::Roe;
  real_t relax = 0.7;  // update under-relaxation
  bool viscous = true;  // include viscous terms + SA (RANS mode)
  real_t line_threshold = 4.0;
  /// Color-major edge reorder for threaded scatter loops (see Level).
  /// Disable only for serial edge-order equivalence tests.
  bool color_edges = true;
};

struct Forces {
  geom::Vec3 force;
  real_t cl = 0, cd = 0;
};

struct LevelWork {
  index_t nodes = 0;
  index_t edges = 0;
  index_t visits_per_cycle = 0;
};

class Nsu3dSolver {
 public:
  Nsu3dSolver(const mesh::UnstructuredMesh& m,
              const euler::FlowConditions& conditions,
              const Nsu3dOptions& options = {});

  /// One multigrid cycle; returns the fine-grid density-residual norm.
  real_t run_cycle();

  std::vector<real_t> solve(int max_cycles, real_t orders = 5);

  /// Guarded solve: per-cycle NaN/blow-up detection, rollback to the last
  /// good checkpoint with CFL/relaxation backoff, optional durable
  /// checkpoint + resume (see resil::guarded_solve). With faults off and
  /// no recovery triggered, the history matches solve() bit for bit.
  resil::GuardedSolveResult solve_guarded(
      int max_cycles, real_t orders = 5,
      const resil::GuardedSolveOptions& options = {});

  /// Snapshot of the complete solver state: the fine-grid solution
  /// (including the SA working variable) plus cycle/history. Coarse-level
  /// state is rebuilt by the next cycle's FAS restriction, so restoring
  /// this checkpoint reproduces the uninterrupted residual history
  /// bit-identically.
  resil::Checkpoint make_checkpoint(std::uint64_t cycle,
                                    std::span<const real_t> history) const;

  /// Restores a checkpoint from make_checkpoint; throws std::runtime_error
  /// when the solver tag or state size does not match this configuration.
  void restore_checkpoint(const resil::Checkpoint& c);

  real_t residual_norm();

  int num_levels() const { return int(levels_.size()); }
  const Level& level(int l) const { return levels_[std::size_t(l)]; }
  std::span<const State> solution() const { return state_[0]; }
  /// Current state of any level (coarse levels hold the latest FAS
  /// restriction) — read-only, for per-level halo exchanges driven off
  /// the level hooks.
  std::span<const State> solution(int l) const {
    return state_[std::size_t(l)];
  }

  /// Read-only level-visit hooks (core::MultigridDriver::set_level_hooks):
  /// `begin` fires on entry to a level visit, `end` right after its
  /// pre-smoother — the post()/finish() anchor points for split halo
  /// exchanges. Hooks must not mutate solver state; histories stay
  /// bit-identical with hooks installed or absent.
  void set_level_hooks(std::function<void(int)> begin,
                       std::function<void(int)> end) {
    driver_.set_level_hooks(std::move(begin), std::move(end));
  }

  Forces integrate_forces() const;
  std::vector<LevelWork> level_work() const;

  /// Residual of `u` on level `l` (public so benchmarks and equivalence
  /// tests can drive the hot kernel directly). Runs on the shared-memory
  /// pool; results are bit-identical for every thread count.
  void compute_residual(int l, const std::vector<State>& u,
                        std::vector<State>& res, bool second_order);

 private:
  friend class core::MultigridDriver<Nsu3dSolver>;

  Nsu3dOptions opt_;
  euler::FlowConditions cond_;
  euler::Prim freestream_;
  real_t nut_inf_ = 0;
  real_t mu_lam_ = 0;
  std::vector<Level> levels_;

  std::vector<std::vector<State>> state_;
  std::vector<std::vector<State>> forcing_;
  std::vector<std::vector<State>> residual_;
  std::vector<std::vector<State>> restricted_snapshot_;

  /// Persistent per-level scratch: steady-state cycles perform no heap
  /// allocation (vectors keep their capacity across sweeps). The hot
  /// per-node fields live in the SoA kernel scratch (nsu3d/kernels.hpp).
  struct Workspace {
    kernels::Scratch k;
    // Restriction scratch (coarse-level sized).
    std::vector<real_t> vol;
    std::vector<State> transferred;
  };
  std::vector<Workspace> work_;

  /// Physical constants handed to the kernel layer (built once in the
  /// constructor from the options and flow conditions).
  kernels::Physics phys_;

  /// Cycle orchestration (level walk, convergence loop, guard wiring,
  /// telemetry, fault hooks) lives in the shared driver; this class keeps
  /// only the physics it feeds the driver.
  core::MultigridDriver<Nsu3dSolver> driver_{"nsu3d"};

  void smooth(int l, int steps);
  void apply_strong_bcs(int l, std::vector<State>& u) const;
  void restrict_to(int l);
  void prolong_correction(int l);

  // --- Adapter surface consumed by core::MultigridDriver ---
  const core::SolveParams& solve_params() const { return opt_; }
  std::size_t state_count() const { return state_[0].size(); }
  void poison_state(std::size_t i);
  void apply_backoff(const resil::GuardOptions& g);
  void telemetry_forces(double& cl, double& cd) const;
};

}  // namespace columbia::nsu3d
