// Multigrid level data for the agglomeration hierarchy.
//
// Level 0 carries the true median-dual metrics of the unstructured mesh;
// coarser levels are built by recursive agglomeration (paper Figs. 2-3):
// coarse control volumes are unions of fine ones, coarse edge normals are
// the accumulated fine dual-face areas across agglomerate boundaries, and
// boundary closures sum. The edge-based residual loop therefore runs
// unchanged on every level.
#pragma once

#include <array>
#include <vector>

#include "geom/vec3.hpp"
#include "graph/lines.hpp"
#include "mesh/dual_metrics.hpp"
#include "mesh/unstructured.hpp"
#include "support/types.hpp"

namespace columbia::nsu3d {

struct Level {
  index_t num_nodes = 0;
  std::vector<std::pair<index_t, index_t>> edges;  // a < b
  std::vector<geom::Vec3> edge_normal;             // oriented a -> b
  std::vector<real_t> edge_length;                 // |x_b - x_a| proxy

  /// Color-major edge layout (paper Sec. III: the edge loop is colored so
  /// accumulate-to-points vectorizes/threads): color c occupies the
  /// contiguous span [color_offsets[c], color_offsets[c+1]) and no two
  /// edges within a span share a node, so a scatter over one span is
  /// race-free. With coloring disabled this degenerates to one span
  /// covering all edges (serial-only).
  std::vector<std::size_t> color_offsets;

  /// Per-edge geometry precomputed once at level construction (the seed
  /// recomputed norms/normalizations/pow per edge per sweep):
  std::vector<real_t> edge_area;      // |edge_normal|
  std::vector<geom::Vec3> edge_unit;  // edge_normal / area (0 if degenerate)
  std::vector<geom::Vec3> edge_dab;   // 0.5 * (center_b - center_a)
  std::vector<real_t> edge_eps2;      // Venkatakrishnan (0.3 h)^3
  /// SoA mirror of the edge topology/geometry for the vectorized kernel
  /// layer (nsu3d/kernels.*): endpoint indices and the normal / unit-normal
  /// / half-offset components as contiguous per-component arrays. Values
  /// are bitwise-identical copies of the AoS fields above; `edge_geo` is
  /// the viscous metric area/length (0 when either vanishes), computed
  /// with the same division the flux sweep previously performed per edge.
  std::vector<index_t> edge_a, edge_b;
  std::vector<real_t> edge_nx, edge_ny, edge_nz;
  std::vector<real_t> edge_ux, edge_uy, edge_uz;
  std::vector<real_t> edge_dx, edge_dy, edge_dz;
  std::vector<real_t> edge_geo;
  std::vector<real_t> node_volume;
  /// 1 / max(node_volume, 1e-300): the gradient normalization factor. The
  /// scalar path divides a Vec3 by max(vol, 1e-300), which geom::Vec3
  /// implements as multiplication by the reciprocal — precomputing that
  /// reciprocal once is bitwise-identical.
  std::vector<real_t> inv_volume;
  std::vector<geom::Vec3> node_center;             // volume centroid proxy
  /// Outward boundary closure per node, per BoundaryTag (Wall/Farfield/Sym).
  std::vector<std::array<geom::Vec3, 3>> boundary_normal;
  std::vector<real_t> wall_distance;

  /// Implicit line set (fine level only has meaningful multi-node lines;
  /// coarse levels carry singleton lines).
  graph::LineSet lines;
  /// For each node, index of its line and position within the line.
  std::vector<index_t> line_of_node;
  std::vector<index_t> pos_in_line;

  /// Map to the next coarser level (empty on the coarsest).
  std::vector<index_t> to_coarse;

  /// Per-node incident edge lists (edge id, +1 if node is 'a' else -1).
  std::vector<std::vector<std::pair<index_t, real_t>>> incident;

  /// For line k, entry j is the (edge id, sign) connecting line[j] to
  /// line[j+1] (sign +1 when line[j] is the edge's 'a' endpoint), or
  /// (kInvalidIndex, 0) when no such edge exists. Precomputed so the
  /// block-tridiagonal assembly does not search `incident` every sweep.
  std::vector<std::vector<std::pair<index_t, real_t>>> line_edges;

  void build_incident();
  void build_line_edges();

  /// Colors + reorders the edge arrays color-major (when `color` is set),
  /// precomputes the per-edge geometry, and (re)builds `incident`. Must
  /// run after edges/normals/lengths/centers are final.
  void finalize_edges(bool color);

  index_t num_edge_colors() const {
    return color_offsets.size() < 2 ? 0 : index_t(color_offsets.size() - 1);
  }

  bool is_wall_node(index_t v) const {
    const geom::Vec3& n =
        boundary_normal[std::size_t(v)][std::size_t(mesh::BoundaryTag::Wall)];
    return dot(n, n) > 0;
  }
};

struct LevelOptions {
  int num_levels = 4;
  /// Edge-coupling ratio above which an edge joins an implicit line.
  real_t line_threshold = 4.0;
  /// Color + reorder edges color-major for the threaded scatter loops.
  /// Disable only for serial-order equivalence testing.
  bool color_edges = true;
};

/// Builds the hierarchy: level 0 from the mesh's dual metrics, coarser
/// levels by agglomerating the coupling-weighted graph.
std::vector<Level> build_levels(const mesh::UnstructuredMesh& m,
                                const LevelOptions& opt);

}  // namespace columbia::nsu3d
