// Domain decomposition for the multigrid hierarchy.
//
// Paper Sec. III: each fine and coarse agglomerated level's adjacency graph
// is partitioned independently (METIS in the paper; graph::partition here),
// with the fine-level graph contracted along implicit lines so no line is
// ever broken across a partition boundary (Fig. 6b). Coarse partitions are
// then relabeled to maximally overlap the fine partitions. Edges straddling
// partitions get ghost vertices (Fig. 6a); the halo exchange packs all
// values destined for one neighbor into a single message.
//
// The same analysis produces, for every level, the work and communication
// quantities the Columbia machine model consumes: per-partition work, halo
// sizes, communication-graph degree, and the inter-grid transfer volume.
#pragma once

#include <vector>

#include "core/exchange_plan.hpp"
#include "nsu3d/level.hpp"
#include "nsu3d/solver.hpp"

namespace columbia::nsu3d {

/// Per-level communication/work statistics for a P-way decomposition.
struct LevelDecomposition {
  index_t nparts = 0;
  std::vector<index_t> part;      // per node
  real_t max_part_nodes = 0;
  real_t avg_part_nodes = 0;
  index_t empty_parts = 0;        // paper Sec. VI: occurs on coarse levels
  /// Halo exchange: per-part ghost counts (values received per exchange).
  real_t max_ghost_nodes = 0;
  real_t total_ghost_nodes = 0;
  /// Degree of the partition communication graph (paper: max 18 fine).
  index_t max_comm_degree = 0;
  /// Inter-grid transfer to the next coarser level: number of fine nodes
  /// whose agglomerate lives on another partition (paper: degree <= 19).
  real_t intergrid_items = 0;       // total across partitions
  real_t max_intergrid_items = 0;   // busiest partition
  index_t intergrid_degree = 0;
};

struct PartitionPlan {
  index_t nparts = 0;
  std::vector<LevelDecomposition> levels;
};

/// Partitions every level of the hierarchy for `nparts` processors.
PartitionPlan build_partition_plan(const std::vector<Level>& levels,
                                   index_t nparts, std::uint64_t seed = 1);

/// Verifies that no implicit line of the fine level is split by the plan.
bool lines_unbroken(const Level& fine, std::span<const index_t> part);

/// Ghost-state request lists of a level decomposition: for each partition,
/// the unique cross-partition edge endpoints it needs each exchange,
/// sorted by (owner, node) for deterministic packing. `item` is the
/// global node id (callers that exchange packed per-partition arrays
/// remap items onto their own slot layout).
core::RequestLists halo_requests(const Level& lvl,
                                 std::span<const index_t> part,
                                 index_t nparts);

/// Parallel first-order residual evaluation: partitions owned nodes per
/// rank, fetches ghost states through a core::ExchangePlan (one packed
/// message per neighbor pair, as in the paper), accumulates edge fluxes
/// rank-local on the thread pool, then returns ghost contributions
/// through a second plan. Used to validate the halo machinery: the result
/// must match the serial residual bit-for-bit up to summation order, with
/// either exchange strategy and with halo fault injection on or off.
///
/// The per-rank edge loop is split at plan-build time into interior edges
/// (both endpoints owned — no ghost state touched) and boundary edges
/// (halo-adjacent), always run interior-first. With `overlap` set, the
/// ghost exchange flies under the interior loop (post → interior compute →
/// finish → boundary compute) and the contribution return flies under the
/// owned-row assembly. Both modes execute the identical floating-point
/// sequence — only the moment the wire completes differs — so overlap
/// on/off results are bit-identical by construction (DESIGN.md, "The
/// interior/boundary split invariant").
std::vector<State> parallel_residual(const Level& lvl,
                                     const std::vector<State>& u,
                                     const euler::Prim& freestream,
                                     std::span<const index_t> part,
                                     index_t nparts,
                                     const core::ExchangePlanOptions& comm = {},
                                     bool overlap = false);

}  // namespace columbia::nsu3d
