// SoA kernel layer for the NSU3D residual and smoother.
//
// Layout rule, chosen by access pattern (measured; see DESIGN.md):
//
//  * Per-EDGE quantities (endpoints, normals, midpoint offsets, viscous
//    metric) live in contiguous per-component real_t arrays on Level.
//    Edge sweeps walk edges in storage order (color-major sort), so each
//    array is a unit-stride stream the prefetcher handles.
//  * Per-NODE quantities are gathered/scattered by node index inside the
//    edge sweeps, so what matters is how many cache lines one node visit
//    touches. They live in fixed-stride per-node component blocks sized
//    to whole cache lines: the prim block packs all eight reconstruction
//    scalars a flux evaluation needs into ONE 64-byte line per node, the
//    gradient block packs gx/gy/gz/min/max into four. A pure
//    component-major layout (F[c * ld + i]) was implemented first and
//    measured performance-neutral: it turns every node visit into 30+
//    distinct line touches and the win from unit-stride components never
//    materializes in gather loops.
//  * The limiter's directional differences (g . dx per edge side) are
//    cached in a per-edge stream and reused verbatim by the flux
//    reconstruction — the two phases evaluate the identical expression.
//
// Bit-identity contract: every kernel here performs exactly the arithmetic
// of the retained scalar reference path (residual_reference below), in the
// same per-node accumulation order — layout and access-pattern transforms
// only. Divisions and square roots keep their original operands; values
// hoisted to setup time (edge geometry, 1/volume, p/rho) are computed with
// the same expressions the scalar path evaluated per sweep. Combined with
// the thread pool's fixed chunking, results are bitwise identical for
// every thread count and to the pre-SoA implementation.
#pragma once

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "euler/flux.hpp"
#include "euler/state.hpp"
#include "linalg/block.hpp"
#include "nsu3d/level.hpp"
#include "support/types.hpp"

namespace columbia::nsu3d {

/// Conservative state per node (same alias as solver.hpp).
using State = std::array<real_t, 6>;

namespace kernels {

/// Per-node component blocks are padded to multiples of this many real_t
/// entries (64 bytes — one cache line) so a node's block never straddles
/// an extra line.
inline constexpr std::size_t kSoaPad = 8;

// Strides (in real_t) of the per-node component blocks.
inline constexpr std::size_t kPrimStride = 8;   // [rho,u,v,w,p,nut,mut,p/rho]
inline constexpr std::size_t kGradStride = 32;  // [gx 6][gy 6][gz 6][min 6][max 6][pad 2]
inline constexpr std::size_t kPhiStride = 8;    // [phi 6][pad 2]
inline constexpr std::size_t kEdqStride = 12;   // [g.d side a 6][g.(-d) side b 6]

// Spalart-Allmaras closure constants (Spalart & Allmaras 1994; the paper's
// reference [8]). Shared by the kernels and the scalar reference.
inline constexpr real_t kCb1 = 0.1355;
inline constexpr real_t kSigma = 2.0 / 3.0;
inline constexpr real_t kCb2 = 0.622;
inline constexpr real_t kKappa = 0.41;
inline constexpr real_t kCw1 = kCb1 / (kKappa * kKappa) + (1.0 + kCb2) / kSigma;
inline constexpr real_t kCw2 = 0.3;
inline constexpr real_t kCw3 = 2.0;
inline constexpr real_t kCv1 = 7.1;
inline constexpr real_t kPrandtl = 0.72;
inline constexpr real_t kPrandtlTurb = 0.9;

/// Primitive variables of a conservative state (mean-flow part).
inline euler::Prim mean_prim(const State& u) {
  const real_t inv = 1.0 / u[0];
  const geom::Vec3 vel{u[1] * inv, u[2] * inv, u[3] * inv};
  const real_t p = (euler::kGamma - 1) * (u[4] - 0.5 * u[0] * dot(vel, vel));
  return {u[0], vel, p};
}

inline bool state_valid(const State& u) {
  for (real_t x : u)
    if (!std::isfinite(x)) return false;
  if (!(u[0] > 0)) return false;
  return mean_prim(u).p > 0;
}

/// Eddy viscosity from the SA working variable.
inline real_t eddy_viscosity(real_t rho, real_t nut, real_t nu_lam) {
  if (nut <= 0) return 0;
  const real_t chi = nut / nu_lam;
  const real_t chi3 = chi * chi * chi;
  const real_t fv1 = chi3 / (chi3 + kCv1 * kCv1 * kCv1);
  return rho * nut * fv1;
}

/// Physical constants the kernels need from the solver configuration.
struct Physics {
  euler::Prim freestream{};
  euler::FluxScheme flux = euler::FluxScheme::Roe;
  real_t mu_lam = 0;   // laminar viscosity (mach / reynolds)
  real_t nut_inf = 0;  // freestream SA working variable
  bool viscous = true;
};

/// Per-level SoA scratch. Persistent across sweeps (vectors keep their
/// capacity). Per-node fields use the fixed-stride component blocks
/// described above; per-edge fields are unit-stride streams.
struct Scratch {
  std::size_t n = 0;  // node count

  // Primitive cache (AoS Prim is what the Riemann solvers consume) plus
  // per-node scalars the smoother reads: SA working variable, eddy
  // viscosity.
  std::vector<euler::Prim> w;
  std::vector<real_t> nut, mut;

  // Per-node component blocks (see the stride constants): prim block
  // pb[i * kPrimStride + c] packs the six reconstruction scalars
  // [rho, u, v, w, p, nut] plus the eddy viscosity and p/rho into one
  // cache line; gradient block gb packs the three Green-Gauss gradient
  // components and the limiter's neighbor min/max; phi block ph holds the
  // limiter value per component.
  std::vector<real_t> pb, gb, ph;

  // Per-edge stream: the limiter's directional differences g . (+-d) for
  // both edge sides, reused bitwise by the flux reconstruction.
  std::vector<real_t> edq;

  // Smoother scratch: wave-speed sums, cached sound speeds, 6x6 blocks.
  std::vector<real_t> wave, snd;
  std::vector<linalg::BlockMat<6>> diag;
  struct LineScratch {
    std::vector<linalg::BlockMat<6>> lower, dd, upper;
    std::vector<linalg::BlockVec<6>> rhs;
  };
  std::vector<LineScratch> line_scratch;  // one slot per pool thread

  /// Sizes the per-node and per-edge arrays (residual-path fields only;
  /// smoother fields are sized by their kernels).
  void resize(const Level& lvl);
};

// --- Residual phase kernels (all pool-parallel, bit-identical across
// thread counts). Call order: prim_cache -> gradients (optional) ->
// limiter (optional) -> flux_residual -> boundary_residual ->
// strong_bc_filter -> sa_source. ---

/// Primitive / reconstruction-scalar cache from the conservative state.
void prim_cache(const Level& lvl, const Physics& phys,
                std::span<const State> u, Scratch& s);

/// Green-Gauss gradients of [rho, u, v, w, p, nut]; when `with_minmax` is
/// set the same edge sweep also accumulates the limiter's neighbor min/max
/// (fused: both accumulate in identical per-node edge order).
void gradients(const Level& lvl, Scratch& s, bool with_minmax);

/// Venkatakrishnan limiter phi from gradients and neighbor min/max.
void limiter(const Level& lvl, Scratch& s);

/// Interior edge sweep: zeroes `res`, then accumulates convective (+
/// viscous) fluxes. `second_order` enables the limited reconstruction and
/// requires limiter() to have run for the same state (the reconstruction
/// reuses the limiter's cached directional differences).
void flux_residual(const Level& lvl, const Physics& phys, const Scratch& s,
                   bool second_order, std::vector<State>& res);

/// Farfield / wall / symmetry boundary closures.
void boundary_residual(const Level& lvl, const Physics& phys,
                       const Scratch& s, std::vector<State>& res);

/// Zeroes residual components replaced by strong Dirichlet conditions
/// (fine level only; pass the level index).
void strong_bc_filter(const Level& lvl, const Physics& phys, int level,
                      std::vector<State>& res);

/// Spalart-Allmaras source terms (production - destruction).
void sa_source(const Level& lvl, const Physics& phys, const Scratch& s,
               std::vector<State>& res);

/// Full residual: composes the phases above exactly as the solver does.
void residual(const Level& lvl, const Physics& phys, int level,
              std::span<const State> u, bool second_order, Scratch& s,
              std::vector<State>& res);

// --- Smoother kernels ---

/// Wave-speed sums (local time-step denominators) into s.wave; also caches
/// per-node sound speeds in s.snd.
void wave_speeds(const Level& lvl, const Physics& phys, Scratch& s);

/// Assembles the 6x6 point-implicit diagonal blocks into s.diag.
/// Requires prim_cache and wave_speeds to have run for the same state.
void assemble_diag(const Level& lvl, const Physics& phys, real_t cfl,
                   std::span<const State> u, Scratch& s);

/// Point-implicit update sweep: factors each diagonal block and applies
/// the under-relaxed update to u. Singular pivots keep their previous
/// state and are counted on the "resil.singular_pivot" observable.
void point_sweep(const Level& lvl, real_t relax, std::span<const State> f,
                 std::span<const State> r, Scratch& s, std::vector<State>& u);

/// Line-implicit update sweep: block-tridiagonal solve along each implicit
/// line (off-line couplings stay explicit). Lines are node-disjoint, so
/// reading u for the viscous linearization while other lines update theirs
/// is race-free.
void line_sweep(const Level& lvl, const Physics& phys, real_t relax,
                std::span<const State> f, std::span<const State> r,
                Scratch& s, std::vector<State>& u);

// --- Retained scalar reference path ---

/// Scratch for the scalar reference implementation (AoS layout, matching
/// the pre-SoA workspace).
struct ReferenceScratch {
  std::vector<euler::Prim> w;
  std::vector<real_t> nut, mut;
  std::vector<std::array<geom::Vec3, 6>> grad;
  std::vector<std::array<real_t, 6>> phi, qmin, qmax;
};

/// Serial scalar residual: a verbatim retention of the pre-SoA edge/node
/// loops (AoS state, per-component switch, per-edge geometry divisions).
/// The equivalence tests assert the SoA path reproduces it bit for bit;
/// micro_kernels times it for speedup attribution.
void residual_reference(const Level& lvl, const Physics& phys, int level,
                        std::span<const State> u, bool second_order,
                        ReferenceScratch& s, std::vector<State>& res);

}  // namespace kernels
}  // namespace columbia::nsu3d
