#include "nsu3d/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "euler/jacobian.hpp"
#include "linalg/block.hpp"
#include "linalg/block_tridiag.hpp"
#include "obs/obs.hpp"
#include "resil/faults.hpp"
#include "smp/pool.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace columbia::nsu3d {

using euler::Prim;
using geom::Vec3;
using linalg::BlockLU;
using linalg::BlockMat;
using linalg::BlockVec;

using kernels::mean_prim;
using kernels::state_valid;

namespace {

// Chunk grain for the pooled node loops here (prolongation); matches the
// kernel layer's constant so chunk boundaries never depend on thread count.
constexpr std::size_t kNodeGrain = 256;

/// Elementwise (no cross-index writes) loop over [0, n).
template <class Fn>
void for_nodes(std::size_t n, Fn&& body) {
  smp::ThreadPool::global().parallel_for(
      0, n, kNodeGrain, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i) body(i);
      });
}

}  // namespace

Nsu3dSolver::Nsu3dSolver(const mesh::UnstructuredMesh& m,
                         const euler::FlowConditions& conditions,
                         const Nsu3dOptions& options)
    : opt_(options), cond_(conditions), freestream_(conditions.freestream()) {
  COLUMBIA_REQUIRE(opt_.mg_levels >= 1);
  mu_lam_ = cond_.mach / cond_.reynolds;  // nondimensional reference
  nut_inf_ = opt_.viscous ? 3.0 * mu_lam_ / freestream_.rho : 0.0;
  phys_.freestream = freestream_;
  phys_.flux = opt_.flux;
  phys_.mu_lam = mu_lam_;
  phys_.nut_inf = nut_inf_;
  phys_.viscous = opt_.viscous;

  LevelOptions lo;
  lo.num_levels = opt_.mg_levels;
  lo.line_threshold = opt_.line_threshold;
  lo.color_edges = opt_.color_edges;
  levels_ = build_levels(m, lo);

  const std::size_t nl = levels_.size();
  state_.resize(nl);
  forcing_.resize(nl);
  residual_.resize(nl);
  restricted_snapshot_.resize(nl);
  work_.resize(nl);
  State uinf{};
  const euler::Cons c5 = euler::to_conservative(freestream_);
  for (int k = 0; k < 5; ++k) uinf[std::size_t(k)] = c5[std::size_t(k)];
  uinf[5] = freestream_.rho * nut_inf_;
  for (std::size_t l = 0; l < nl; ++l) {
    state_[l].assign(std::size_t(levels_[l].num_nodes), uinf);
    forcing_[l].assign(std::size_t(levels_[l].num_nodes), State{});
    residual_[l].assign(std::size_t(levels_[l].num_nodes), State{});
  }
  apply_strong_bcs(0, state_[0]);
}

void Nsu3dSolver::apply_strong_bcs(int l, std::vector<State>& u) const {
  if (l != 0) return;  // strong conditions live on the true mesh
  const Level& lvl = levels_[0];
  for (index_t v = 0; v < lvl.num_nodes; ++v) {
    if (opt_.viscous && lvl.is_wall_node(v)) {
      // No-slip, nu~ = 0 at solid walls.
      u[std::size_t(v)][1] = 0;
      u[std::size_t(v)][2] = 0;
      u[std::size_t(v)][3] = 0;
      u[std::size_t(v)][5] = 0;
      continue;
    }
    const Vec3& sn = lvl.boundary_normal[std::size_t(v)]
                                        [std::size_t(mesh::BoundaryTag::Symmetry)];
    const real_t s2 = dot(sn, sn);
    if (s2 > 0) {
      // Symmetry plane: remove the normal momentum component.
      const Vec3 nh = sn / std::sqrt(s2);
      Vec3 mom{u[std::size_t(v)][1], u[std::size_t(v)][2], u[std::size_t(v)][3]};
      mom -= dot(mom, nh) * nh;
      u[std::size_t(v)][1] = mom.x;
      u[std::size_t(v)][2] = mom.y;
      u[std::size_t(v)][3] = mom.z;
    }
  }
}

void Nsu3dSolver::compute_residual(int l, const std::vector<State>& u,
                                   std::vector<State>& res,
                                   bool second_order) {
  OBS_SPAN("nsu3d.residual", "level", l);
  kernels::residual(levels_[std::size_t(l)], phys_, l, u, second_order,
                    work_[std::size_t(l)].k, res);
}

void Nsu3dSolver::smooth(int l, int steps) {
  OBS_SPAN("nsu3d.smooth", "level", l);
  const Level& lvl = levels_[std::size_t(l)];
  Workspace& ws = work_[std::size_t(l)];
  std::vector<State>& u = state_[std::size_t(l)];
  const std::vector<State>& f = forcing_[std::size_t(l)];
  const bool second = opt_.second_order && l == 0;
  const bool lines = opt_.smoother == SmootherKind::LineImplicit;

  for (int step = 0; step < steps; ++step) {
    compute_residual(l, u, residual_[std::size_t(l)], second);
    std::vector<State>& r = residual_[std::size_t(l)];
    // The primitive/SoA caches in ws.k were just refreshed by
    // compute_residual from the same u.
    kernels::wave_speeds(lvl, phys_, ws.k);
    kernels::assemble_diag(lvl, phys_, opt_.cfl, u, ws.k);
    if (!lines)
      kernels::point_sweep(lvl, opt_.relax, f, r, ws.k, u);
    else
      kernels::line_sweep(lvl, phys_, opt_.relax, f, r, ws.k, u);
    apply_strong_bcs(l, u);
  }
}


void Nsu3dSolver::restrict_to(int l) {
  const Level& fine = levels_[std::size_t(l)];
  const Level& coarse = levels_[std::size_t(l) + 1];
  const auto& map = fine.to_coarse;
  Workspace& wsc = work_[std::size_t(l) + 1];
  std::vector<State>& uc = state_[std::size_t(l) + 1];
  std::vector<State>& fc = forcing_[std::size_t(l) + 1];
  const std::size_t nc = std::size_t(coarse.num_nodes);

  uc.assign(nc, State{});
  wsc.vol.assign(nc, 0.0);
  std::vector<real_t>& vol = wsc.vol;
  for (index_t i = 0; i < fine.num_nodes; ++i) {
    const std::size_t j = std::size_t(map[std::size_t(i)]);
    const real_t v = fine.node_volume[std::size_t(i)];
    vol[j] += v;
    for (int c = 0; c < 6; ++c)
      uc[j][std::size_t(c)] += v * state_[std::size_t(l)][std::size_t(i)][std::size_t(c)];
  }
  for (std::size_t j = 0; j < nc; ++j)
    if (vol[j] > 0)
      for (int c = 0; c < 6; ++c) uc[j][std::size_t(c)] /= vol[j];
  restricted_snapshot_[std::size_t(l) + 1] = uc;

  compute_residual(l, state_[std::size_t(l)], residual_[std::size_t(l)],
                   opt_.second_order && l == 0);
  wsc.transferred.assign(nc, State{});
  std::vector<State>& transferred = wsc.transferred;
  for (index_t i = 0; i < fine.num_nodes; ++i) {
    const std::size_t j = std::size_t(map[std::size_t(i)]);
    for (int c = 0; c < 6; ++c)
      transferred[j][std::size_t(c)] +=
          residual_[std::size_t(l)][std::size_t(i)][std::size_t(c)] -
          forcing_[std::size_t(l)][std::size_t(i)][std::size_t(c)];
  }
  compute_residual(l + 1, uc, residual_[std::size_t(l) + 1], false);
  fc.assign(nc, State{});
  for (std::size_t j = 0; j < nc; ++j)
    for (int c = 0; c < 6; ++c)
      fc[j][std::size_t(c)] =
          residual_[std::size_t(l) + 1][j][std::size_t(c)] -
          transferred[j][std::size_t(c)];
}

void Nsu3dSolver::prolong_correction(int l) {
  const Level& fine = levels_[std::size_t(l)];
  const auto& map = fine.to_coarse;
  const std::vector<State>& uc = state_[std::size_t(l) + 1];
  const std::vector<State>& snap = restricted_snapshot_[std::size_t(l) + 1];
  std::vector<State>& uf = state_[std::size_t(l)];
  for_nodes(std::size_t(fine.num_nodes), [&](std::size_t i) {
    const std::size_t j = std::size_t(map[i]);
    State unew = uf[i];
    for (int c = 0; c < 6; ++c)
      unew[std::size_t(c)] += opt_.correction_damping *
                              (uc[j][std::size_t(c)] - snap[j][std::size_t(c)]);
    if (state_valid(unew)) uf[i] = unew;
  });
  apply_strong_bcs(l, uf);
}

real_t Nsu3dSolver::residual_norm() {
  compute_residual(0, state_[0], residual_[0], opt_.second_order);
  const Level& lvl = levels_[0];
  const std::size_t n = std::size_t(lvl.num_nodes);
  // Deterministic tree reduction: fixed chunking, partials combined in
  // chunk order, so the norm is bit-identical for every thread count.
  const real_t sum = smp::ThreadPool::global().reduce_sum(
      0, n, kNodeGrain, [&](std::size_t b, std::size_t e) {
        real_t s = 0;
        for (std::size_t i = b; i < e; ++i) {
          const real_t v = lvl.node_volume[i];
          if (v <= 0) continue;
          const real_t r = residual_[0][i][0] / v;
          s += r * r;
        }
        return s;
      });
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (lvl.node_volume[i] > 0) ++cnt;
  return std::sqrt(sum / real_t(std::max<std::size_t>(1, cnt)));
}

real_t Nsu3dSolver::run_cycle() { return driver_.run_cycle(*this); }

/// Fault hook (COLUMBIA_FAULTS state_nan): poison one energy entry after
/// the cycle's updates so the guard sees a non-finite residual.
void Nsu3dSolver::poison_state(std::size_t i) {
  state_[0][i][4] = std::numeric_limits<real_t>::quiet_NaN();
}

resil::Checkpoint Nsu3dSolver::make_checkpoint(
    std::uint64_t cycle, std::span<const real_t> history) const {
  resil::Checkpoint c;
  c.solver = "nsu3d";
  c.cycle = cycle;
  c.state_stride = 6;
  c.history.assign(history.begin(), history.end());
  c.state.reserve(state_[0].size() * 6);
  for (const State& s : state_[0])
    c.state.insert(c.state.end(), s.begin(), s.end());
  return c;
}

void Nsu3dSolver::restore_checkpoint(const resil::Checkpoint& c) {
  if (c.solver != "nsu3d")
    throw std::runtime_error("checkpoint solver mismatch: got '" + c.solver +
                             "', expected 'nsu3d'");
  if (c.state_stride != 6 || c.state.size() != state_[0].size() * 6)
    throw std::runtime_error("checkpoint state size mismatch for nsu3d grid");
  auto& u = state_[0];
  for (std::size_t i = 0; i < u.size(); ++i)
    for (std::size_t k = 0; k < 6; ++k) u[i][k] = c.state[i * 6 + k];
}

resil::GuardedSolveResult Nsu3dSolver::solve_guarded(
    int max_cycles, real_t orders, const resil::GuardedSolveOptions& options) {
  return driver_.solve_guarded(*this, max_cycles, orders, options);
}

/// The line-implicit smoother has both a CFL and a relaxation knob; guard
/// backoff retreats on both.
void Nsu3dSolver::apply_backoff(const resil::GuardOptions& g) {
  opt_.cfl *= g.cfl_backoff;
  opt_.relax *= g.relax_backoff;
}

void Nsu3dSolver::telemetry_forces(double& cl, double& cd) const {
  const Forces f = integrate_forces();
  cl = double(f.cl);
  cd = double(f.cd);
}

std::vector<real_t> Nsu3dSolver::solve(int max_cycles, real_t orders) {
  return driver_.solve(*this, max_cycles, orders);
}

Forces Nsu3dSolver::integrate_forces() const {
  const Level& lvl = levels_[0];
  Forces out;
  const real_t pinf = freestream_.p;
  for (index_t i = 0; i < lvl.num_nodes; ++i) {
    const Vec3& wn =
        lvl.boundary_normal[std::size_t(i)][std::size_t(mesh::BoundaryTag::Wall)];
    if (dot(wn, wn) <= 0) continue;
    const Prim w = mean_prim(state_[0][std::size_t(i)]);
    out.force += (w.p - pinf) * wn;
  }
  const real_t q = 0.5 * freestream_.rho * dot(freestream_.vel, freestream_.vel);
  if (q > 0) {
    const Vec3 dd = normalized(freestream_.vel);
    out.cd = dot(out.force, dd) / q;
    out.cl = (out.force.z - dot(out.force, dd) * dd.z) / q;
  }
  return out;
}

std::vector<LevelWork> Nsu3dSolver::level_work() const {
  const std::vector<index_t> visits =
      core::cycle_visits(int(levels_.size()), opt_.cycle);

  std::vector<LevelWork> w;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    LevelWork lw;
    lw.nodes = levels_[l].num_nodes;
    lw.edges = index_t(levels_[l].edges.size());
    lw.visits_per_cycle = visits[l];
    w.push_back(lw);
  }
  return w;
}

}  // namespace columbia::nsu3d
