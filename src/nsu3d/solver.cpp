#include "nsu3d/solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "euler/jacobian.hpp"
#include "linalg/block.hpp"
#include "linalg/block_tridiag.hpp"
#include "obs/obs.hpp"
#include "resil/faults.hpp"
#include "smp/pool.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace columbia::nsu3d {

using euler::Prim;
using geom::Vec3;
using linalg::BlockLU;
using linalg::BlockMat;
using linalg::BlockVec;

namespace {

// Spalart-Allmaras closure constants (Spalart & Allmaras 1994; the paper's
// reference [8]).
constexpr real_t kCb1 = 0.1355;
constexpr real_t kSigma = 2.0 / 3.0;
constexpr real_t kCb2 = 0.622;
constexpr real_t kKappa = 0.41;
constexpr real_t kCw1 = kCb1 / (kKappa * kKappa) + (1.0 + kCb2) / kSigma;
constexpr real_t kCw2 = 0.3;
constexpr real_t kCw3 = 2.0;
constexpr real_t kCv1 = 7.1;
constexpr real_t kPrandtl = 0.72;
constexpr real_t kPrandtlTurb = 0.9;

// Chunk grains for the pooled loops; fixed constants so chunk boundaries —
// and with them floating-point combine order — never depend on the thread
// count (see smp::ThreadPool's determinism contract).
constexpr std::size_t kNodeGrain = 256;
constexpr std::size_t kEdgeGrain = 512;
constexpr std::size_t kLineGrain = 2;

Prim mean_prim(const State& u) {
  const real_t inv = 1.0 / u[0];
  const Vec3 vel{u[1] * inv, u[2] * inv, u[3] * inv};
  const real_t p =
      (euler::kGamma - 1) * (u[4] - 0.5 * u[0] * dot(vel, vel));
  return {u[0], vel, p};
}

bool state_valid(const State& u) {
  for (real_t x : u)
    if (!std::isfinite(x)) return false;
  if (!(u[0] > 0)) return false;
  return mean_prim(u).p > 0;
}

/// Eddy viscosity from the SA working variable.
real_t eddy_viscosity(real_t rho, real_t nut, real_t nu_lam) {
  if (nut <= 0) return 0;
  const real_t chi = nut / nu_lam;
  const real_t chi3 = chi * chi * chi;
  const real_t fv1 = chi3 / (chi3 + kCv1 * kCv1 * kCv1);
  return rho * nut * fv1;
}

/// Scalar component c of the reconstruction set [rho, u, v, w, p, nut]:
/// the one helper shared by the gradient, limiter, and reconstruction
/// stages.
inline real_t prim_scalar(const Prim& w, real_t nut, int c) {
  switch (c) {
    case 0: return w.rho;
    case 1: return w.vel.x;
    case 2: return w.vel.y;
    case 3: return w.vel.z;
    case 4: return w.p;
    default: return nut;
  }
}

/// Runs `body(edge)` over every edge, one color span at a time. Edges in
/// a span touch disjoint nodes (Level::finalize_edges), so the scatter is
/// race-free; processing colors in order keeps per-node accumulation
/// order fixed for every thread count.
template <class Fn>
void for_edges_colored(const Level& lvl, Fn&& body) {
  smp::ThreadPool& pool = smp::ThreadPool::global();
  for (std::size_t c = 0; c + 1 < lvl.color_offsets.size(); ++c)
    pool.parallel_for(lvl.color_offsets[c], lvl.color_offsets[c + 1],
                      kEdgeGrain,
                      [&](std::size_t b, std::size_t e, int) {
                        for (std::size_t k = b; k < e; ++k) body(k);
                      });
}

/// Elementwise (no cross-index writes) loop over [0, n).
template <class Fn>
void for_nodes(std::size_t n, Fn&& body) {
  smp::ThreadPool::global().parallel_for(
      0, n, kNodeGrain, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i) body(i);
      });
}

}  // namespace

Nsu3dSolver::Nsu3dSolver(const mesh::UnstructuredMesh& m,
                         const euler::FlowConditions& conditions,
                         const Nsu3dOptions& options)
    : opt_(options), cond_(conditions), freestream_(conditions.freestream()) {
  COLUMBIA_REQUIRE(opt_.mg_levels >= 1);
  mu_lam_ = cond_.mach / cond_.reynolds;  // nondimensional reference
  nut_inf_ = opt_.viscous ? 3.0 * mu_lam_ / freestream_.rho : 0.0;

  LevelOptions lo;
  lo.num_levels = opt_.mg_levels;
  lo.line_threshold = opt_.line_threshold;
  lo.color_edges = opt_.color_edges;
  levels_ = build_levels(m, lo);

  const std::size_t nl = levels_.size();
  state_.resize(nl);
  forcing_.resize(nl);
  residual_.resize(nl);
  restricted_snapshot_.resize(nl);
  work_.resize(nl);
  State uinf{};
  const euler::Cons c5 = euler::to_conservative(freestream_);
  for (int k = 0; k < 5; ++k) uinf[std::size_t(k)] = c5[std::size_t(k)];
  uinf[5] = freestream_.rho * nut_inf_;
  for (std::size_t l = 0; l < nl; ++l) {
    state_[l].assign(std::size_t(levels_[l].num_nodes), uinf);
    forcing_[l].assign(std::size_t(levels_[l].num_nodes), State{});
    residual_[l].assign(std::size_t(levels_[l].num_nodes), State{});
  }
  apply_strong_bcs(0, state_[0]);
}

void Nsu3dSolver::apply_strong_bcs(int l, std::vector<State>& u) const {
  if (l != 0) return;  // strong conditions live on the true mesh
  const Level& lvl = levels_[0];
  for (index_t v = 0; v < lvl.num_nodes; ++v) {
    if (opt_.viscous && lvl.is_wall_node(v)) {
      // No-slip, nu~ = 0 at solid walls.
      u[std::size_t(v)][1] = 0;
      u[std::size_t(v)][2] = 0;
      u[std::size_t(v)][3] = 0;
      u[std::size_t(v)][5] = 0;
      continue;
    }
    const Vec3& sn = lvl.boundary_normal[std::size_t(v)]
                                        [std::size_t(mesh::BoundaryTag::Symmetry)];
    const real_t s2 = dot(sn, sn);
    if (s2 > 0) {
      // Symmetry plane: remove the normal momentum component.
      const Vec3 nh = sn / std::sqrt(s2);
      Vec3 mom{u[std::size_t(v)][1], u[std::size_t(v)][2], u[std::size_t(v)][3]};
      mom -= dot(mom, nh) * nh;
      u[std::size_t(v)][1] = mom.x;
      u[std::size_t(v)][2] = mom.y;
      u[std::size_t(v)][3] = mom.z;
    }
  }
}

void Nsu3dSolver::compute_residual(int l, const std::vector<State>& u,
                                   std::vector<State>& res,
                                   bool second_order) {
  OBS_SPAN("nsu3d.residual", "level", l);
  const Level& lvl = levels_[std::size_t(l)];
  Workspace& ws = work_[std::size_t(l)];
  const std::size_t n = std::size_t(lvl.num_nodes);
  res.assign(n, State{});

  // Primitive caches.
  ws.w.resize(n);
  ws.nut.resize(n);
  ws.mut.resize(n);
  auto& w = ws.w;
  auto& nut = ws.nut;
  auto& mut = ws.mut;
  for_nodes(n, [&](std::size_t i) {
    w[i] = mean_prim(u[i]);
    nut[i] = u[i][5] / u[i][0];
    mut[i] = opt_.viscous
                 ? eddy_viscosity(w[i].rho, nut[i], mu_lam_ / w[i].rho)
                 : 0.0;
  });

  // Green-Gauss gradients of [rho, u, v, w, p, nut]: used for second-order
  // reconstruction (fine level) and for the vorticity in the SA source.
  const bool need_grad = second_order || opt_.viscous;
  auto& grad = ws.grad;
  if (need_grad) {
    grad.assign(n, {});
    for_edges_colored(lvl, [&](std::size_t e) {
      const auto [a, b] = lvl.edges[e];
      const Vec3& nrm = lvl.edge_normal[e];
      for (int c = 0; c < 6; ++c) {
        const real_t qf =
            0.5 * (prim_scalar(w[std::size_t(a)], nut[std::size_t(a)], c) +
                   prim_scalar(w[std::size_t(b)], nut[std::size_t(b)], c));
        grad[std::size_t(a)][std::size_t(c)] += qf * nrm;
        grad[std::size_t(b)][std::size_t(c)] -= qf * nrm;
      }
    });
    for_nodes(n, [&](std::size_t i) {
      Vec3 bn{};
      for (const Vec3& t : lvl.boundary_normal[i]) bn += t;
      for (int c = 0; c < 6; ++c) {
        grad[i][std::size_t(c)] += prim_scalar(w[i], nut[i], c) * bn;
        grad[i][std::size_t(c)] =
            grad[i][std::size_t(c)] / std::max(lvl.node_volume[i], real_t(1e-300));
      }
    });
  }

  // Venkatakrishnan limiter for the fine-level reconstruction.
  auto& phi = ws.phi;
  if (second_order) {
    auto& qmin = ws.qmin;
    auto& qmax = ws.qmax;
    qmin.resize(n);
    qmax.resize(n);
    for_nodes(n, [&](std::size_t i) {
      for (int c = 0; c < 6; ++c)
        qmin[i][std::size_t(c)] = qmax[i][std::size_t(c)] =
            prim_scalar(w[i], nut[i], c);
    });
    for_edges_colored(lvl, [&](std::size_t e) {
      const auto [a, b] = lvl.edges[e];
      for (int c = 0; c < 6; ++c) {
        const real_t qa = prim_scalar(w[std::size_t(a)], nut[std::size_t(a)], c);
        const real_t qb = prim_scalar(w[std::size_t(b)], nut[std::size_t(b)], c);
        qmin[std::size_t(a)][std::size_t(c)] = std::min(qmin[std::size_t(a)][std::size_t(c)], qb);
        qmax[std::size_t(a)][std::size_t(c)] = std::max(qmax[std::size_t(a)][std::size_t(c)], qb);
        qmin[std::size_t(b)][std::size_t(c)] = std::min(qmin[std::size_t(b)][std::size_t(c)], qa);
        qmax[std::size_t(b)][std::size_t(c)] = std::max(qmax[std::size_t(b)][std::size_t(c)], qa);
      }
    });
    phi.assign(n, {1, 1, 1, 1, 1, 1});
    auto venkat = [](real_t dplus, real_t dq, real_t eps2) {
      const real_t num = (dplus * dplus + eps2) + 2.0 * dplus * dq;
      const real_t den = dplus * dplus + 2.0 * dq * dq + dplus * dq + eps2;
      return den > 0 ? num / den : 1.0;
    };
    for_edges_colored(lvl, [&](std::size_t e) {
      const auto [a, b] = lvl.edges[e];
      const Vec3& dab = lvl.edge_dab[e];
      const real_t eps2 = lvl.edge_eps2[e];
      for (int side = 0; side < 2; ++side) {
        const std::size_t i = std::size_t(side == 0 ? a : b);
        const Vec3 d = side == 0 ? dab : -1.0 * dab;
        for (int c = 0; c < 6; ++c) {
          const real_t dq = dot(grad[i][std::size_t(c)], d);
          real_t lim = 1.0;
          if (dq > 1e-14)
            lim = venkat(qmax[i][std::size_t(c)] - prim_scalar(w[i], nut[i], c),
                         dq, eps2);
          else if (dq < -1e-14)
            lim = venkat(prim_scalar(w[i], nut[i], c) - qmin[i][std::size_t(c)],
                         -dq, eps2);
          phi[i][std::size_t(c)] = std::min(phi[i][std::size_t(c)], lim);
        }
      }
    });
  }

  auto reconstruct = [&](std::size_t i, const Vec3& d, real_t& nut_out) -> Prim {
    nut_out = nut[i];
    if (!second_order) return w[i];
    std::array<real_t, 6> q{w[i].rho, w[i].vel.x, w[i].vel.y, w[i].vel.z,
                            w[i].p, nut[i]};
    for (int c = 0; c < 6; ++c)
      q[std::size_t(c)] += phi[i][std::size_t(c)] *
                           dot(grad[i][std::size_t(c)], d);
    if (q[0] <= 0 || q[4] <= 0) return w[i];
    nut_out = q[5];
    return Prim{q[0], {q[1], q[2], q[3]}, q[4]};
  };

  // Edge loop: convective + viscous fluxes.
  for_edges_colored(lvl, [&](std::size_t e) {
    const auto [a, b] = lvl.edges[e];
    const real_t area = lvl.edge_area[e];
    if (area <= 0) return;
    const Vec3& nh = lvl.edge_unit[e];

    const Vec3& dab = lvl.edge_dab[e];
    real_t nut_l, nut_r;
    const Prim wl = reconstruct(std::size_t(a), dab, nut_l);
    const Prim wr = reconstruct(std::size_t(b), -1.0 * dab, nut_r);
    const euler::Cons flux = euler::numerical_flux(wl, wr, nh, opt_.flux);
    const real_t mdot = flux[0] * area;
    const real_t fnut = mdot * (mdot >= 0 ? nut_l : nut_r);
    for (int c = 0; c < 5; ++c) {
      res[std::size_t(a)][std::size_t(c)] += area * flux[std::size_t(c)];
      res[std::size_t(b)][std::size_t(c)] -= area * flux[std::size_t(c)];
    }
    res[std::size_t(a)][5] += fnut;
    res[std::size_t(b)][5] -= fnut;

    if (opt_.viscous && lvl.edge_length[e] > 0) {
      const real_t geo = area / lvl.edge_length[e];
      const real_t mu_m = mu_lam_ + 0.5 * (mut[std::size_t(a)] + mut[std::size_t(b)]);
      const real_t cm = mu_m * geo;
      const Vec3 dvel = w[std::size_t(b)].vel - w[std::size_t(a)].vel;
      res[std::size_t(a)][1] -= cm * dvel.x;
      res[std::size_t(a)][2] -= cm * dvel.y;
      res[std::size_t(a)][3] -= cm * dvel.z;
      res[std::size_t(b)][1] += cm * dvel.x;
      res[std::size_t(b)][2] += cm * dvel.y;
      res[std::size_t(b)][3] += cm * dvel.z;
      // Shear work + conduction lumped into an energy Laplacian with the
      // thermal coefficient (thin-layer approximation).
      const real_t ck = (mu_lam_ / kPrandtl +
                         0.5 * (mut[std::size_t(a)] + mut[std::size_t(b)]) / kPrandtlTurb) *
                        euler::kGamma / (euler::kGamma - 1) * geo;
      const real_t dT = w[std::size_t(b)].p / w[std::size_t(b)].rho -
                        w[std::size_t(a)].p / w[std::size_t(a)].rho;
      // Mean kinetic-energy transport by shear.
      const Vec3 vm = 0.5 * (w[std::size_t(a)].vel + w[std::size_t(b)].vel);
      const real_t dke = dot(vm, dvel);
      res[std::size_t(a)][4] -= ck * dT + cm * dke;
      res[std::size_t(b)][4] += ck * dT + cm * dke;
      // SA diffusion: (1/sigma) rho (nu + nu~) grad nu~.
      const real_t rho_m = 0.5 * (w[std::size_t(a)].rho + w[std::size_t(b)].rho);
      const real_t nu_m = mu_lam_ / rho_m;
      const real_t nut_m = 0.5 * (nut[std::size_t(a)] + nut[std::size_t(b)]);
      const real_t cs = rho_m * (nu_m + std::max<real_t>(nut_m, 0)) / kSigma * geo;
      const real_t dnt = nut[std::size_t(b)] - nut[std::size_t(a)];
      res[std::size_t(a)][5] -= cs * dnt;
      res[std::size_t(b)][5] += cs * dnt;
    }
  });

  // Boundary closures.
  for_nodes(n, [&](std::size_t i) {
    const Vec3& fn =
        lvl.boundary_normal[i][std::size_t(mesh::BoundaryTag::Farfield)];
    const real_t fa = norm(fn);
    if (fa > 0) {
      const Vec3 nh = fn / fa;
      const euler::Cons flux =
          euler::farfield_flux(w[i], freestream_, nh, opt_.flux);
      for (int c = 0; c < 5; ++c)
        res[i][std::size_t(c)] += fa * flux[std::size_t(c)];
      const real_t mdot = flux[0] * fa;
      res[i][5] += mdot * (mdot >= 0 ? nut[i] : nut_inf_);
    }
    for (mesh::BoundaryTag tag :
         {mesh::BoundaryTag::Wall, mesh::BoundaryTag::Symmetry}) {
      const Vec3& bn = lvl.boundary_normal[i][std::size_t(tag)];
      if (dot(bn, bn) > 0) {
        const euler::Cons flux = euler::wall_flux(w[i], bn);
        for (int c = 0; c < 5; ++c) res[i][std::size_t(c)] += flux[std::size_t(c)];
      }
    }
  });

  // Strongly-constrained components carry no residual: their equations are
  // replaced by the Dirichlet projection (apply_strong_bcs). Leaving them
  // in would poison the FAS coarse-grid forcing with residuals the fine
  // grid never drives to zero.
  if (l == 0) {
    for_nodes(n, [&](std::size_t i) {
      if (opt_.viscous && lvl.is_wall_node(index_t(i))) {
        res[i][1] = res[i][2] = res[i][3] = 0;
        res[i][5] = 0;
        return;
      }
      const Vec3& sn =
          lvl.boundary_normal[i][std::size_t(mesh::BoundaryTag::Symmetry)];
      const real_t s2 = dot(sn, sn);
      if (s2 > 0) {
        const Vec3 nh = sn / std::sqrt(s2);
        Vec3 rm{res[i][1], res[i][2], res[i][3]};
        rm -= dot(rm, nh) * nh;
        res[i][1] = rm.x;
        res[i][2] = rm.y;
        res[i][3] = rm.z;
      }
    });
  }

  // SA source terms (production - destruction), volume-scaled.
  if (opt_.viscous) {
    for_nodes(n, [&](std::size_t i) {
      const real_t d = std::max(lvl.wall_distance[i], real_t(1e-8));
      const real_t nu = mu_lam_ / w[i].rho;
      const real_t nt = std::max<real_t>(nut[i], 0);
      // Vorticity magnitude from the Green-Gauss velocity gradients.
      const Vec3 gx = grad[i][1], gy = grad[i][2], gz = grad[i][3];
      const Vec3 omega{gz.y - gy.z, gx.z - gz.x, gy.x - gx.y};
      const real_t s = norm(omega);
      const real_t chi = nt / nu;
      const real_t chi3 = chi * chi * chi;
      const real_t fv1 = chi3 / (chi3 + kCv1 * kCv1 * kCv1);
      const real_t fv2 = 1.0 - chi / (1.0 + chi * fv1);
      const real_t k2d2 = kKappa * kKappa * d * d;
      real_t stilde = s + nt / k2d2 * fv2;
      stilde = std::max(stilde, real_t(0.3) * s);
      const real_t prod = kCb1 * stilde * w[i].rho * nt;
      real_t r = stilde > 0 ? nt / (stilde * k2d2) : 10.0;
      r = std::min(r, real_t(10.0));
      const real_t g = r + kCw2 * (std::pow(r, 6) - r);
      const real_t c6 = std::pow(kCw3, 6);
      const real_t fw = g * std::pow((1.0 + c6) / (std::pow(g, 6) + c6),
                                     1.0 / 6.0);
      const real_t destr = kCw1 * fw * w[i].rho * (nt / d) * (nt / d);
      res[i][5] += lvl.node_volume[i] * (destr - prod);
    });
  }
}

void Nsu3dSolver::smooth(int l, int steps) {
  OBS_SPAN("nsu3d.smooth", "level", l);
  const Level& lvl = levels_[std::size_t(l)];
  Workspace& ws = work_[std::size_t(l)];
  std::vector<State>& u = state_[std::size_t(l)];
  const std::vector<State>& f = forcing_[std::size_t(l)];
  const std::size_t n = std::size_t(lvl.num_nodes);
  const bool second = opt_.second_order && l == 0;
  const bool lines = opt_.smoother == SmootherKind::LineImplicit;
  smp::ThreadPool& pool = smp::ThreadPool::global();

  for (int step = 0; step < steps; ++step) {
    compute_residual(l, u, residual_[std::size_t(l)], second);
    std::vector<State>& r = residual_[std::size_t(l)];

    // Primitive cache + wave-speed sums for local time steps (the cache
    // in ws was just refreshed by compute_residual from the same u).
    auto& w = ws.w;
    auto& nut = ws.nut;
    auto& mut = ws.mut;
    ws.wave.assign(n, 0.0);
    auto& wave = ws.wave;
    for_edges_colored(lvl, [&](std::size_t e) {
      const auto [a, b] = lvl.edges[e];
      const real_t area = lvl.edge_area[e];
      if (area <= 0) return;
      const Vec3& nh = lvl.edge_unit[e];
      wave[std::size_t(a)] += euler::spectral_radius(w[std::size_t(a)], nh) * area;
      wave[std::size_t(b)] += euler::spectral_radius(w[std::size_t(b)], nh) * area;
      if (opt_.viscous && lvl.edge_length[e] > 0) {
        const real_t c =
            (mu_lam_ + 0.5 * (mut[std::size_t(a)] + mut[std::size_t(b)])) *
            area / lvl.edge_length[e];
        wave[std::size_t(a)] += c / w[std::size_t(a)].rho;
        wave[std::size_t(b)] += c / w[std::size_t(b)].rho;
      }
    });
    for_nodes(n, [&](std::size_t i) {
      Vec3 bn{};
      for (const Vec3& t : lvl.boundary_normal[i]) bn += t;
      const real_t ba = norm(bn);
      if (ba > 0) wave[i] += euler::spectral_radius(w[i], bn / ba) * ba;
    });

    // Diagonal 6x6 blocks.
    ws.diag.resize(n);
    auto& diag = ws.diag;
    for_nodes(n, [&](std::size_t i) {
      const real_t dt = wave[i] > 0
                            ? opt_.cfl * lvl.node_volume[i] / wave[i]
                            : 1e30;
      diag[i] = BlockMat<6>::diagonal(lvl.node_volume[i] / dt);
    });
    for_edges_colored(lvl, [&](std::size_t e) {
      const auto [a, b] = lvl.edges[e];
      const real_t area = lvl.edge_area[e];
      if (area <= 0) return;
      const Vec3& nh = lvl.edge_unit[e];
      const real_t lam_a = euler::spectral_radius(w[std::size_t(a)], nh) * area;
      const real_t lam_b = euler::spectral_radius(w[std::size_t(b)], nh) * area;
      // dR_a/du_a += 0.5 (A(w_a, +n) + lambda I); likewise for b with -n.
      const BlockMat<5> ja =
          euler::flux_jacobian(w[std::size_t(a)], lvl.edge_normal[e]);
      const BlockMat<5> jb =
          euler::flux_jacobian(w[std::size_t(b)], -1.0 * lvl.edge_normal[e]);
      for (int rr = 0; rr < 5; ++rr)
        for (int cc = 0; cc < 5; ++cc) {
          diag[std::size_t(a)](rr, cc) += 0.5 * ja(rr, cc);
          diag[std::size_t(b)](rr, cc) += 0.5 * jb(rr, cc);
        }
      for (int rr = 0; rr < 5; ++rr) {
        diag[std::size_t(a)](rr, rr) += 0.5 * lam_a;
        diag[std::size_t(b)](rr, rr) += 0.5 * lam_b;
      }
      diag[std::size_t(a)](5, 5) += 0.5 * lam_a;
      diag[std::size_t(b)](5, 5) += 0.5 * lam_b;
      if (opt_.viscous && lvl.edge_length[e] > 0) {
        const real_t geo = area / lvl.edge_length[e];
        const real_t cm =
            (mu_lam_ + 0.5 * (mut[std::size_t(a)] + mut[std::size_t(b)])) * geo;
        const real_t cs = (mu_lam_ + 0.5 * (u[std::size_t(a)][5] + u[std::size_t(b)][5])) /
                          kSigma * geo;
        for (std::size_t s2 : {std::size_t(a), std::size_t(b)}) {
          for (int rr = 1; rr <= 4; ++rr) diag[s2](rr, rr) += cm;
          diag[s2](5, 5) += cs;
        }
      }
    });
    // Farfield linearization keeps boundary nodes well conditioned.
    for_nodes(n, [&](std::size_t i) {
      Vec3 bn{};
      for (const Vec3& t : lvl.boundary_normal[i]) bn += t;
      const real_t ba = norm(bn);
      if (ba > 0) {
        const real_t lam = euler::spectral_radius(w[i], bn / ba) * ba;
        for (int rr = 0; rr < 6; ++rr) diag[i](rr, rr) += 0.5 * lam;
      }
    });

    auto rhs_of = [&](std::size_t i) {
      BlockVec<6> rhs;
      for (int c = 0; c < 6; ++c)
        rhs[c] = f[i][std::size_t(c)] - r[i][std::size_t(c)];
      return rhs;
    };
    auto apply_update = [&](std::size_t i, const BlockVec<6>& du) {
      State unew = u[i];
      for (int c = 0; c < 6; ++c)
        unew[std::size_t(c)] += opt_.relax * du[c];
      unew[5] = std::max<real_t>(unew[5], 0);
      if (state_valid(unew)) u[i] = unew;
    };

    if (!lines) {
      for_nodes(n, [&](std::size_t i) {
        BlockLU<6> lu;
        if (!lu.factor_status(diag[i])) {
          // Singular point: skip the update (explicit fallback) but make
          // the event visible instead of silently dropping it.
          OBS_COUNT("resil.singular_pivot", 1);
          return;
        }
        apply_update(i, lu.solve(rhs_of(i)));
      });
    } else {
      // Block-tridiagonal solve along each implicit line; off-line
      // couplings stay explicit (Jacobi) as in the paper's scheme. Lines
      // are node-disjoint, so they solve in parallel; each pool thread
      // uses its own factorization scratch.
      if (ws.line_scratch.size() < std::size_t(pool.num_threads()))
        ws.line_scratch.resize(std::size_t(pool.num_threads()));
      const auto& all_lines = lvl.lines.lines;
      OBS_COUNT("nsu3d.line_solves", all_lines.size());
      pool.parallel_for(0, all_lines.size(), kLineGrain,
                        [&](std::size_t lb, std::size_t le, int tid) {
        Workspace::LineScratch& ls = ws.line_scratch[std::size_t(tid)];
        for (std::size_t li = lb; li < le; ++li) {
        const auto& line = all_lines[li];
        const std::size_t len = line.size();
        ls.lower.assign(len, BlockMat<6>{});
        ls.dd.assign(len, BlockMat<6>{});
        ls.upper.assign(len, BlockMat<6>{});
        ls.rhs.assign(len, BlockVec<6>{});
        auto& lower = ls.lower;
        auto& dd = ls.dd;
        auto& upper = ls.upper;
        auto& rhs = ls.rhs;
        for (std::size_t k = 0; k < len; ++k) {
          const std::size_t i = std::size_t(line[k]);
          dd[k] = diag[i];
          rhs[k] = rhs_of(i);
        }
        // Off-diagonal blocks for consecutive line nodes.
        for (std::size_t k = 0; k + 1 < len; ++k) {
          const index_t i = line[k];
          const index_t j = line[k + 1];
          // Locate the edge (i, j).
          for (const auto& [eid, sgn] : lvl.incident[std::size_t(i)]) {
            const auto [ea, eb] = lvl.edges[std::size_t(eid)];
            const index_t other = ea == i ? eb : ea;
            if (other != j) continue;
            const Vec3 n_out = sgn * lvl.edge_normal[std::size_t(eid)];
            const real_t area = lvl.edge_area[std::size_t(eid)];
            if (area <= 0) break;
            const Vec3 nh = n_out / area;
            // dR_i/du_j = 0.5 (A(w_j, n_out) - lambda_j I).
            const BlockMat<5> jj = euler::flux_jacobian(w[std::size_t(j)], n_out);
            const real_t lam = euler::spectral_radius(w[std::size_t(j)], nh) * area;
            BlockMat<6> off;
            for (int rr = 0; rr < 5; ++rr) {
              for (int cc = 0; cc < 5; ++cc) off(rr, cc) = 0.5 * jj(rr, cc);
              off(rr, rr) -= 0.5 * lam;
            }
            off(5, 5) -= 0.5 * lam;
            if (opt_.viscous && lvl.edge_length[std::size_t(eid)] > 0) {
              const real_t geo = area / lvl.edge_length[std::size_t(eid)];
              const real_t cm = (mu_lam_ + 0.5 * (mut[std::size_t(i)] +
                                                  mut[std::size_t(j)])) * geo;
              for (int rr = 1; rr <= 4; ++rr) off(rr, rr) -= cm;
              off(5, 5) -= (mu_lam_ +
                            0.5 * (u[std::size_t(i)][5] + u[std::size_t(j)][5])) /
                           kSigma * geo;
            }
            upper[k] = off;
            // dR_j/du_i: mirrored with w_i and the opposite normal.
            const BlockMat<5> ji =
                euler::flux_jacobian(w[std::size_t(i)], -1.0 * n_out);
            const real_t lam_i =
                euler::spectral_radius(w[std::size_t(i)], nh) * area;
            BlockMat<6> offl;
            for (int rr = 0; rr < 5; ++rr) {
              for (int cc = 0; cc < 5; ++cc) offl(rr, cc) = 0.5 * ji(rr, cc);
              offl(rr, rr) -= 0.5 * lam_i;
            }
            offl(5, 5) -= 0.5 * lam_i;
            if (opt_.viscous && lvl.edge_length[std::size_t(eid)] > 0) {
              const real_t geo = area / lvl.edge_length[std::size_t(eid)];
              const real_t cm = (mu_lam_ + 0.5 * (mut[std::size_t(i)] +
                                                  mut[std::size_t(j)])) * geo;
              for (int rr = 1; rr <= 4; ++rr) offl(rr, rr) -= cm;
              offl(5, 5) -= (mu_lam_ +
                             0.5 * (u[std::size_t(i)][5] + u[std::size_t(j)][5])) /
                            kSigma * geo;
            }
            lower[k + 1] = offl;
            break;
          }
        }
        if (!linalg::solve_block_tridiag_status<6>(lower, dd, upper, rhs)) {
          OBS_COUNT("resil.singular_pivot", 1);
          continue;
        }
        for (std::size_t k = 0; k < len; ++k)
          apply_update(std::size_t(line[k]), rhs[k]);
        }
      });
    }
    apply_strong_bcs(l, u);
  }
}

void Nsu3dSolver::restrict_to(int l) {
  const Level& fine = levels_[std::size_t(l)];
  const Level& coarse = levels_[std::size_t(l) + 1];
  const auto& map = fine.to_coarse;
  Workspace& wsc = work_[std::size_t(l) + 1];
  std::vector<State>& uc = state_[std::size_t(l) + 1];
  std::vector<State>& fc = forcing_[std::size_t(l) + 1];
  const std::size_t nc = std::size_t(coarse.num_nodes);

  uc.assign(nc, State{});
  wsc.vol.assign(nc, 0.0);
  std::vector<real_t>& vol = wsc.vol;
  for (index_t i = 0; i < fine.num_nodes; ++i) {
    const std::size_t j = std::size_t(map[std::size_t(i)]);
    const real_t v = fine.node_volume[std::size_t(i)];
    vol[j] += v;
    for (int c = 0; c < 6; ++c)
      uc[j][std::size_t(c)] += v * state_[std::size_t(l)][std::size_t(i)][std::size_t(c)];
  }
  for (std::size_t j = 0; j < nc; ++j)
    if (vol[j] > 0)
      for (int c = 0; c < 6; ++c) uc[j][std::size_t(c)] /= vol[j];
  restricted_snapshot_[std::size_t(l) + 1] = uc;

  compute_residual(l, state_[std::size_t(l)], residual_[std::size_t(l)],
                   opt_.second_order && l == 0);
  wsc.transferred.assign(nc, State{});
  std::vector<State>& transferred = wsc.transferred;
  for (index_t i = 0; i < fine.num_nodes; ++i) {
    const std::size_t j = std::size_t(map[std::size_t(i)]);
    for (int c = 0; c < 6; ++c)
      transferred[j][std::size_t(c)] +=
          residual_[std::size_t(l)][std::size_t(i)][std::size_t(c)] -
          forcing_[std::size_t(l)][std::size_t(i)][std::size_t(c)];
  }
  compute_residual(l + 1, uc, residual_[std::size_t(l) + 1], false);
  fc.assign(nc, State{});
  for (std::size_t j = 0; j < nc; ++j)
    for (int c = 0; c < 6; ++c)
      fc[j][std::size_t(c)] =
          residual_[std::size_t(l) + 1][j][std::size_t(c)] -
          transferred[j][std::size_t(c)];
}

void Nsu3dSolver::prolong_correction(int l) {
  const Level& fine = levels_[std::size_t(l)];
  const auto& map = fine.to_coarse;
  const std::vector<State>& uc = state_[std::size_t(l) + 1];
  const std::vector<State>& snap = restricted_snapshot_[std::size_t(l) + 1];
  std::vector<State>& uf = state_[std::size_t(l)];
  for_nodes(std::size_t(fine.num_nodes), [&](std::size_t i) {
    const std::size_t j = std::size_t(map[i]);
    State unew = uf[i];
    for (int c = 0; c < 6; ++c)
      unew[std::size_t(c)] += opt_.correction_damping *
                              (uc[j][std::size_t(c)] - snap[j][std::size_t(c)]);
    if (state_valid(unew)) uf[i] = unew;
  });
  apply_strong_bcs(l, uf);
}

real_t Nsu3dSolver::residual_norm() {
  compute_residual(0, state_[0], residual_[0], opt_.second_order);
  const Level& lvl = levels_[0];
  const std::size_t n = std::size_t(lvl.num_nodes);
  // Deterministic tree reduction: fixed chunking, partials combined in
  // chunk order, so the norm is bit-identical for every thread count.
  const real_t sum = smp::ThreadPool::global().reduce_sum(
      0, n, kNodeGrain, [&](std::size_t b, std::size_t e) {
        real_t s = 0;
        for (std::size_t i = b; i < e; ++i) {
          const real_t v = lvl.node_volume[i];
          if (v <= 0) continue;
          const real_t r = residual_[0][i][0] / v;
          s += r * r;
        }
        return s;
      });
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (lvl.node_volume[i] > 0) ++cnt;
  return std::sqrt(sum / real_t(std::max<std::size_t>(1, cnt)));
}

real_t Nsu3dSolver::run_cycle() { return driver_.run_cycle(*this); }

/// Fault hook (COLUMBIA_FAULTS state_nan): poison one energy entry after
/// the cycle's updates so the guard sees a non-finite residual.
void Nsu3dSolver::poison_state(std::size_t i) {
  state_[0][i][4] = std::numeric_limits<real_t>::quiet_NaN();
}

resil::Checkpoint Nsu3dSolver::make_checkpoint(
    std::uint64_t cycle, std::span<const real_t> history) const {
  resil::Checkpoint c;
  c.solver = "nsu3d";
  c.cycle = cycle;
  c.state_stride = 6;
  c.history.assign(history.begin(), history.end());
  c.state.reserve(state_[0].size() * 6);
  for (const State& s : state_[0])
    c.state.insert(c.state.end(), s.begin(), s.end());
  return c;
}

void Nsu3dSolver::restore_checkpoint(const resil::Checkpoint& c) {
  if (c.solver != "nsu3d")
    throw std::runtime_error("checkpoint solver mismatch: got '" + c.solver +
                             "', expected 'nsu3d'");
  if (c.state_stride != 6 || c.state.size() != state_[0].size() * 6)
    throw std::runtime_error("checkpoint state size mismatch for nsu3d grid");
  auto& u = state_[0];
  for (std::size_t i = 0; i < u.size(); ++i)
    for (std::size_t k = 0; k < 6; ++k) u[i][k] = c.state[i * 6 + k];
}

resil::GuardedSolveResult Nsu3dSolver::solve_guarded(
    int max_cycles, real_t orders, const resil::GuardedSolveOptions& options) {
  return driver_.solve_guarded(*this, max_cycles, orders, options);
}

/// The line-implicit smoother has both a CFL and a relaxation knob; guard
/// backoff retreats on both.
void Nsu3dSolver::apply_backoff(const resil::GuardOptions& g) {
  opt_.cfl *= g.cfl_backoff;
  opt_.relax *= g.relax_backoff;
}

void Nsu3dSolver::telemetry_forces(double& cl, double& cd) const {
  const Forces f = integrate_forces();
  cl = double(f.cl);
  cd = double(f.cd);
}

std::vector<real_t> Nsu3dSolver::solve(int max_cycles, real_t orders) {
  return driver_.solve(*this, max_cycles, orders);
}

Forces Nsu3dSolver::integrate_forces() const {
  const Level& lvl = levels_[0];
  Forces out;
  const real_t pinf = freestream_.p;
  for (index_t i = 0; i < lvl.num_nodes; ++i) {
    const Vec3& wn =
        lvl.boundary_normal[std::size_t(i)][std::size_t(mesh::BoundaryTag::Wall)];
    if (dot(wn, wn) <= 0) continue;
    const Prim w = mean_prim(state_[0][std::size_t(i)]);
    out.force += (w.p - pinf) * wn;
  }
  const real_t q = 0.5 * freestream_.rho * dot(freestream_.vel, freestream_.vel);
  if (q > 0) {
    const Vec3 dd = normalized(freestream_.vel);
    out.cd = dot(out.force, dd) / q;
    out.cl = (out.force.z - dot(out.force, dd) * dd.z) / q;
  }
  return out;
}

std::vector<LevelWork> Nsu3dSolver::level_work() const {
  const std::vector<index_t> visits =
      core::cycle_visits(int(levels_.size()), opt_.cycle);

  std::vector<LevelWork> w;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    LevelWork lw;
    lw.nodes = levels_[l].num_nodes;
    lw.edges = index_t(levels_[l].edges.size());
    lw.visits_per_cycle = visits[l];
    w.push_back(lw);
  }
  return w;
}

}  // namespace columbia::nsu3d
