#include "nsu3d/kernels.hpp"

#include <algorithm>
#include <type_traits>

#include "euler/jacobian.hpp"
#include "linalg/block_tridiag.hpp"
#include "obs/obs.hpp"
#include "smp/pool.hpp"

namespace columbia::nsu3d::kernels {

using euler::Prim;
using geom::Vec3;
using linalg::BlockLU;
using linalg::BlockMat;
using linalg::BlockVec;

namespace {

// Chunk grains for the pooled loops; fixed constants so chunk boundaries —
// and with them floating-point combine order — never depend on the thread
// count (see smp::ThreadPool's determinism contract).
constexpr std::size_t kNodeGrain = 256;
constexpr std::size_t kEdgeGrain = 512;
constexpr std::size_t kLineGrain = 2;

/// Runs `body(edge)` over every edge, one color span at a time. Edges in
/// a span touch disjoint nodes (Level::finalize_edges), so the scatter is
/// race-free; processing colors in order keeps per-node accumulation
/// order fixed for every thread count.
template <class Fn>
void for_edges_colored(const Level& lvl, Fn&& body) {
  smp::ThreadPool& pool = smp::ThreadPool::global();
  for (std::size_t c = 0; c + 1 < lvl.color_offsets.size(); ++c)
    pool.parallel_for(lvl.color_offsets[c], lvl.color_offsets[c + 1],
                      kEdgeGrain, [&](std::size_t b, std::size_t e, int) {
                        for (std::size_t k = b; k < e; ++k) body(k);
                      });
}

/// Elementwise (no cross-index writes) loop over [0, n).
template <class Fn>
void for_nodes(std::size_t n, Fn&& body) {
  smp::ThreadPool::global().parallel_for(
      0, n, kNodeGrain, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i) body(i);
      });
}

/// Compile-time Riemann-solver dispatch so the flux sweep inlines the
/// scheme body instead of branching per edge.
template <euler::FluxScheme S>
euler::Cons scheme_flux(const Prim& l, const Prim& r, const Vec3& n) {
  if constexpr (S == euler::FluxScheme::Roe) return euler::roe_flux(l, r, n);
  if constexpr (S == euler::FluxScheme::VanLeer)
    return euler::van_leer_flux(l, r, n);
  return euler::rusanov_flux(l, r, n);
}

real_t venkat(real_t dplus, real_t dq, real_t eps2) {
  const real_t num = (dplus * dplus + eps2) + 2.0 * dplus * dq;
  const real_t den = dplus * dplus + 2.0 * dq * dq + dplus * dq + eps2;
  return den > 0 ? num / den : 1.0;
}

// Edge-sweep inner bodies, hoisted into functions whose pointer parameters
// carry __restrict: GCC honors parameter-level restrict without emitting
// runtime alias-check loop versions (edge endpoints are distinct nodes, so
// the a/b blocks never overlap). Each 6-wide component loop then
// vectorizes unconditionally — elementwise, no reassociation.
template <bool MinMax>
inline void grad_edge(real_t* __restrict ga, real_t* __restrict gbb,
                      const real_t* __restrict pa,
                      const real_t* __restrict pbv, real_t enx, real_t eny,
                      real_t enz) {
  for (std::size_t c = 0; c < 6; ++c) {
    const real_t qa = pa[c], qb = pbv[c];
    const real_t qf = 0.5 * (qa + qb);
    ga[c] += qf * enx;
    ga[6 + c] += qf * eny;
    ga[12 + c] += qf * enz;
    gbb[c] -= qf * enx;
    gbb[6 + c] -= qf * eny;
    gbb[12 + c] -= qf * enz;
    if constexpr (MinMax) {
      ga[18 + c] = std::min(ga[18 + c], qb);
      ga[24 + c] = std::max(ga[24 + c], qb);
      gbb[18 + c] = std::min(gbb[18 + c], qa);
      gbb[24 + c] = std::max(gbb[24 + c], qa);
    }
  }
}

/// Directional differences g . (+-d) for both sides of one edge, stored in
/// the per-edge stream. Side a looks along +d, side b along -d;
/// (-g)·d = -(g·d) exactly, so negating the precomputed half-offset
/// matches the scalar path.
inline void limiter_dq(real_t* __restrict ed, const real_t* __restrict ga,
                       const real_t* __restrict gbb, real_t dxe, real_t dye,
                       real_t dze) {
  for (std::size_t c = 0; c < 6; ++c) {
    ed[c] = (ga[c] * dxe + ga[6 + c] * dye) + ga[12 + c] * dze;
    ed[6 + c] = (gbb[c] * -dxe + gbb[6 + c] * -dye) + gbb[12 + c] * -dze;
  }
}

/// Limited linear reconstruction of both edge sides from the prim blocks,
/// the phi blocks, and the cached directional differences.
inline void recon_edge(real_t* __restrict ql, real_t* __restrict qr,
                       const real_t* __restrict pa,
                       const real_t* __restrict pbv,
                       const real_t* __restrict pha,
                       const real_t* __restrict phb,
                       const real_t* __restrict ed) {
  for (std::size_t c = 0; c < 6; ++c) {
    ql[c] = pa[c] + pha[c] * ed[c];
    qr[c] = pbv[c] + phb[c] * ed[6 + c];
  }
}

}  // namespace

void Scratch::resize(const Level& lvl) {
  n = std::size_t(lvl.num_nodes);
  w.resize(n);
  nut.resize(n);
  mut.resize(n);
  pb.resize(n * kPrimStride);
  gb.resize(n * kGradStride);
  ph.resize(n * kPhiStride);
  edq.resize(lvl.edges.size() * kEdqStride);
}

namespace {

/// prim_cache body with optional fused seeding of the gradient/phi blocks
/// and zeroing of the residual — pure stores to fields nothing reads until
/// the later phases, so riding along in this pass is bit-neutral and saves
/// whole-array sweeps in the composed residual().
template <bool SeedGrad, bool SeedMinmax, bool ZeroRes>
void prim_cache_impl(const Level& lvl, const Physics& phys,
                     std::span<const State> u, Scratch& s,
                     std::vector<State>* res) {
  const std::size_t n = std::size_t(lvl.num_nodes);
  Prim* const w = s.w.data();
  real_t* const nut = s.nut.data();
  real_t* const mut = s.mut.data();
  real_t* const pb = s.pb.data();
  real_t* const gb = s.gb.data();
  real_t* const ph = s.ph.data();
  State* const r = ZeroRes ? res->data() : nullptr;
  const real_t mu_lam = phys.mu_lam;
  const bool viscous = phys.viscous;
  for_nodes(n, [&](std::size_t i) {
    const State& ui = u[i];
    const Prim wi = mean_prim(ui);
    w[i] = wi;
    const real_t nt = ui[5] / ui[0];
    nut[i] = nt;
    const real_t ev =
        viscous ? eddy_viscosity(wi.rho, nt, mu_lam / wi.rho) : 0.0;
    mut[i] = ev;
    real_t* const __restrict p = pb + i * kPrimStride;
    p[0] = wi.rho;
    p[1] = wi.vel.x;
    p[2] = wi.vel.y;
    p[3] = wi.vel.z;
    p[4] = wi.p;
    p[5] = nt;
    p[6] = ev;
    // p/rho with the exact division the viscous flux performed per edge
    // side; cached so the energy Laplacian reads two values per edge.
    p[7] = viscous ? wi.p / wi.rho : 0.0;
    if constexpr (SeedGrad) {
      real_t* const __restrict g = gb + i * kGradStride;
      for (std::size_t c = 0; c < 6; ++c) {
        g[c] = g[6 + c] = g[12 + c] = 0.0;
        if constexpr (SeedMinmax) g[18 + c] = g[24 + c] = p[c];
      }
      if constexpr (SeedMinmax) {
        real_t* const __restrict f = ph + i * kPhiStride;
        for (std::size_t c = 0; c < 6; ++c) f[c] = 1.0;
      }
    }
    if constexpr (ZeroRes) r[i] = State{};
  });
}

}  // namespace

void prim_cache(const Level& lvl, const Physics& phys,
                std::span<const State> u, Scratch& s) {
  prim_cache_impl<false, false, false>(lvl, phys, u, s, nullptr);
}

namespace {

/// Edge sweep + finalize of the Green-Gauss gradients; requires the
/// gradient (and, with minmax, phi) blocks to be seeded — either by the
/// standalone seed pass in gradients() or fused into prim_cache_impl.
void gradients_sweep(const Level& lvl, Scratch& s, bool with_minmax);

}  // namespace

void gradients(const Level& lvl, Scratch& s, bool with_minmax) {
  const std::size_t n = std::size_t(lvl.num_nodes);
  const real_t* const pb = s.pb.data();
  real_t* const gb = s.gb.data();
  real_t* const ph = s.ph.data();

  // Zero the accumulators; seed min/max with the node's own value (the
  // scalar path did this between its two edge sweeps — the seeds read only
  // q, so seeding before the fused sweep is value-identical). The limiter
  // seed (phi = 1) rides along in the same pass: nothing reads ph before
  // the limiter's own min-accumulation.
  for_nodes(n, [&](std::size_t i) {
    real_t* const __restrict g = gb + i * kGradStride;
    const real_t* const __restrict p = pb + i * kPrimStride;
    for (std::size_t c = 0; c < 6; ++c) {
      g[c] = g[6 + c] = g[12 + c] = 0.0;
      if (with_minmax) g[18 + c] = g[24 + c] = p[c];
    }
    if (with_minmax) {
      real_t* const __restrict f = ph + i * kPhiStride;
      for (std::size_t c = 0; c < 6; ++c) f[c] = 1.0;
    }
  });
  gradients_sweep(lvl, s, with_minmax);
}

namespace {

void gradients_sweep(const Level& lvl, Scratch& s, bool with_minmax) {
  const std::size_t n = std::size_t(lvl.num_nodes);
  const real_t* const pb = s.pb.data();
  real_t* const gb = s.gb.data();

  // Fused sweep: Green-Gauss accumulation and neighbor min/max visit edges
  // in the same order, so each output stream keeps the scalar path's
  // per-node accumulation order.
  const index_t* const ea = lvl.edge_a.data();
  const index_t* const eb = lvl.edge_b.data();
  const real_t* const nx = lvl.edge_nx.data();
  const real_t* const ny = lvl.edge_ny.data();
  const real_t* const nz = lvl.edge_nz.data();
  auto sweep = [&](auto minmax) {
    for_edges_colored(lvl, [&](std::size_t e) {
      const std::size_t a = std::size_t(ea[e]);
      const std::size_t b = std::size_t(eb[e]);
      const real_t enx = nx[e], eny = ny[e], enz = nz[e];
      grad_edge<decltype(minmax)::value>(
          gb + a * kGradStride, gb + b * kGradStride, pb + a * kPrimStride,
          pb + b * kPrimStride, enx, eny, enz);
    });
  };
  if (with_minmax)
    sweep(std::true_type{});
  else
    sweep(std::false_type{});

  // Boundary closure + volume normalization. The scalar path divided a
  // Vec3 by max(vol, 1e-300), which geom::Vec3 implements as reciprocal
  // multiplication — Level::inv_volume is that same reciprocal.
  const real_t* const invv = lvl.inv_volume.data();
  for_nodes(n, [&](std::size_t i) {
    Vec3 bn{};
    for (const Vec3& t : lvl.boundary_normal[i]) bn += t;
    const real_t iv = invv[i];
    real_t* const __restrict g = gb + i * kGradStride;
    const real_t* const __restrict p = pb + i * kPrimStride;
    for (std::size_t c = 0; c < 6; ++c) {
      const real_t qi = p[c];
      g[c] = (g[c] + qi * bn.x) * iv;
      g[6 + c] = (g[6 + c] + qi * bn.y) * iv;
      g[12 + c] = (g[12 + c] + qi * bn.z) * iv;
    }
  });
}

}  // namespace

void limiter(const Level& lvl, Scratch& s) {
  const real_t* const pb = s.pb.data();
  const real_t* const gb = s.gb.data();
  real_t* const ph = s.ph.data();
  real_t* const edq = s.edq.data();
  // ph was seeded to 1 by the gradients(with_minmax) pass that must
  // precede this kernel (the limiter needs those gradients and min/max).

  const index_t* const ea = lvl.edge_a.data();
  const index_t* const eb = lvl.edge_b.data();
  const real_t* const dx = lvl.edge_dx.data();
  const real_t* const dy = lvl.edge_dy.data();
  const real_t* const dz = lvl.edge_dz.data();
  for_edges_colored(lvl, [&](std::size_t e) {
    const std::size_t a = std::size_t(ea[e]);
    const std::size_t b = std::size_t(eb[e]);
    const real_t dxe = dx[e], dye = dy[e], dze = dz[e];
    const real_t eps2 = lvl.edge_eps2[e];
    const real_t* const pa = pb + a * kPrimStride;
    const real_t* const pbv = pb + b * kPrimStride;
    const real_t* const ga = gb + a * kGradStride;
    const real_t* const gbb = gb + b * kGradStride;
    real_t* const pha = ph + a * kPhiStride;
    real_t* const phb = ph + b * kPhiStride;
    real_t* const ed = edq + e * kEdqStride;
    // Vectorized directional differences, cached per edge: the flux
    // reconstruction reuses them bitwise instead of re-gathering the
    // gradients. The venkat pass stays scalar: the data-dependent branches
    // skip the division entirely for near-constant components, which a
    // branchless/vectorized form (measured) cannot.
    limiter_dq(ed, ga, gbb, dxe, dye, dze);
    for (std::size_t c = 0; c < 6; ++c) {
      const real_t dqa = ed[c];
      const real_t dqb = ed[6 + c];
      real_t lim_a = 1.0;
      if (dqa > 1e-14)
        lim_a = venkat(ga[24 + c] - pa[c], dqa, eps2);
      else if (dqa < -1e-14)
        lim_a = venkat(pa[c] - ga[18 + c], -dqa, eps2);
      pha[c] = std::min(pha[c], lim_a);
      real_t lim_b = 1.0;
      if (dqb > 1e-14)
        lim_b = venkat(gbb[24 + c] - pbv[c], dqb, eps2);
      else if (dqb < -1e-14)
        lim_b = venkat(pbv[c] - gbb[18 + c], -dqb, eps2);
      phb[c] = std::min(phb[c], lim_b);
    }
  });
}

namespace {

template <euler::FluxScheme S>
void flux_edges_impl(const Level& lvl, const Physics& phys, const Scratch& s,
                     bool second_order, std::vector<State>& res) {
  // Everything a flux evaluation needs per node — reconstruction scalars,
  // eddy viscosity, p/rho — sits in the one-line prim block; the limiter
  // pass already cached the per-edge directional differences, so the sweep
  // gathers two prim lines + two phi lines per edge and streams the rest.
  const real_t* const pb = s.pb.data();
  const real_t* const ph = s.ph.data();
  const real_t* const edq = s.edq.data();
  State* const r = res.data();
  const real_t mu_lam = phys.mu_lam;
  const bool viscous = phys.viscous;
  // Loop-invariant laminar conduction factor (same division as the scalar
  // path, evaluated once).
  const real_t mu_pr = mu_lam / kPrandtl;

  const index_t* const ea = lvl.edge_a.data();
  const index_t* const eb = lvl.edge_b.data();
  const real_t* const geo_ = lvl.edge_geo.data();
  for_edges_colored(lvl, [&](std::size_t e) {
    const std::size_t a = std::size_t(ea[e]);
    const std::size_t b = std::size_t(eb[e]);
    const real_t area = lvl.edge_area[e];
    if (area <= 0) return;
    const Vec3 nh{lvl.edge_ux[e], lvl.edge_uy[e], lvl.edge_uz[e]};
    const real_t* const pa = pb + a * kPrimStride;
    const real_t* const pbv = pb + b * kPrimStride;

    // Limited linear reconstruction to the edge midpoint (falls back to
    // the node value when it would produce a nonphysical state).
    Prim wl{pa[0], {pa[1], pa[2], pa[3]}, pa[4]};
    Prim wr{pbv[0], {pbv[1], pbv[2], pbv[3]}, pbv[4]};
    real_t nut_l = pa[5], nut_r = pbv[5];
    if (second_order) {
      real_t ql[6], qr[6];
      recon_edge(ql, qr, pa, pbv, ph + a * kPhiStride, ph + b * kPhiStride,
                 edq + e * kEdqStride);
      if (!(ql[0] <= 0 || ql[4] <= 0)) {
        wl = Prim{ql[0], {ql[1], ql[2], ql[3]}, ql[4]};
        nut_l = ql[5];
      }
      if (!(qr[0] <= 0 || qr[4] <= 0)) {
        wr = Prim{qr[0], {qr[1], qr[2], qr[3]}, qr[4]};
        nut_r = qr[5];
      }
    }

    const euler::Cons flux = scheme_flux<S>(wl, wr, nh);
    const real_t mdot = flux[0] * area;
    const real_t fnut = mdot * (mdot >= 0 ? nut_l : nut_r);
    for (std::size_t c = 0; c < 5; ++c) {
      const real_t fc = area * flux[c];
      r[a][c] += fc;
      r[b][c] -= fc;
    }
    r[a][5] += fnut;
    r[b][5] -= fnut;

    // Thin-layer viscous terms; edge_geo carries the area/length metric
    // (positive exactly when the scalar path's length guard passed).
    if (viscous && geo_[e] > 0) {
      const real_t geo = geo_[e];
      const real_t mutm = 0.5 * (pa[6] + pbv[6]);
      const real_t cm = (mu_lam + mutm) * geo;
      const Vec3 va{pa[1], pa[2], pa[3]};
      const Vec3 vb{pbv[1], pbv[2], pbv[3]};
      const Vec3 dvel = vb - va;
      r[a][1] -= cm * dvel.x;
      r[a][2] -= cm * dvel.y;
      r[a][3] -= cm * dvel.z;
      r[b][1] += cm * dvel.x;
      r[b][2] += cm * dvel.y;
      r[b][3] += cm * dvel.z;
      // Shear work + conduction lumped into an energy Laplacian with the
      // thermal coefficient (thin-layer approximation).
      const real_t ck = (mu_pr + mutm / kPrandtlTurb) * euler::kGamma /
                        (euler::kGamma - 1) * geo;
      const real_t dT = pbv[7] - pa[7];
      // Mean kinetic-energy transport by shear.
      const Vec3 vm = 0.5 * (va + vb);
      const real_t dke = dot(vm, dvel);
      const real_t de = ck * dT + cm * dke;
      r[a][4] -= de;
      r[b][4] += de;
      // SA diffusion: (1/sigma) rho (nu + nu~) grad nu~.
      const real_t rho_m = 0.5 * (pa[0] + pbv[0]);
      const real_t nu_m = mu_lam / rho_m;
      const real_t nut_m = 0.5 * (pa[5] + pbv[5]);
      const real_t cs =
          rho_m * (nu_m + std::max<real_t>(nut_m, 0)) / kSigma * geo;
      const real_t ds = cs * (pbv[5] - pa[5]);
      r[a][5] -= ds;
      r[b][5] += ds;
    }
  });
}

}  // namespace

namespace {

/// Flux edge sweep without the zeroing pass — the fused residual() zeroes
/// `res` inside prim_cache_impl instead.
void flux_sweep(const Level& lvl, const Physics& phys, const Scratch& s,
                bool second_order, std::vector<State>& res) {
  switch (phys.flux) {
    case euler::FluxScheme::Roe:
      flux_edges_impl<euler::FluxScheme::Roe>(lvl, phys, s, second_order, res);
      break;
    case euler::FluxScheme::VanLeer:
      flux_edges_impl<euler::FluxScheme::VanLeer>(lvl, phys, s, second_order,
                                                  res);
      break;
    case euler::FluxScheme::Rusanov:
      flux_edges_impl<euler::FluxScheme::Rusanov>(lvl, phys, s, second_order,
                                                  res);
      break;
  }
}

}  // namespace

void flux_residual(const Level& lvl, const Physics& phys, const Scratch& s,
                   bool second_order, std::vector<State>& res) {
  res.assign(std::size_t(lvl.num_nodes), State{});
  flux_sweep(lvl, phys, s, second_order, res);
}

namespace {

// Per-node bodies of the three residual closures. The closures are
// independent across nodes, so the composed residual() fuses them into a
// single node pass; the public phase kernels below loop over the same
// bodies one at a time. Per-node operation order (boundary flux, then the
// strong-BC projection, then the SA source) matches the phase order, so
// the fusion is bit-identical.

inline void boundary_node(const Level& lvl, const Physics& phys,
                          const Prim* w, const real_t* nut, std::size_t i,
                          State& ri) {
  const Vec3& fn =
      lvl.boundary_normal[i][std::size_t(mesh::BoundaryTag::Farfield)];
  const real_t fa = norm(fn);
  if (fa > 0) {
    const Vec3 nh = fn / fa;
    const euler::Cons flux =
        euler::farfield_flux(w[i], phys.freestream, nh, phys.flux);
    for (std::size_t c = 0; c < 5; ++c) ri[c] += fa * flux[c];
    const real_t mdot = flux[0] * fa;
    ri[5] += mdot * (mdot >= 0 ? nut[i] : phys.nut_inf);
  }
  for (mesh::BoundaryTag tag :
       {mesh::BoundaryTag::Wall, mesh::BoundaryTag::Symmetry}) {
    const Vec3& bn = lvl.boundary_normal[i][std::size_t(tag)];
    if (dot(bn, bn) > 0) {
      const euler::Cons flux = euler::wall_flux(w[i], bn);
      for (std::size_t c = 0; c < 5; ++c) ri[c] += flux[c];
    }
  }
}

inline void strong_bc_node(const Level& lvl, bool viscous, std::size_t i,
                           State& ri) {
  if (viscous && lvl.is_wall_node(index_t(i))) {
    ri[1] = ri[2] = ri[3] = 0;
    ri[5] = 0;
    return;
  }
  const Vec3& sn =
      lvl.boundary_normal[i][std::size_t(mesh::BoundaryTag::Symmetry)];
  const real_t s2 = dot(sn, sn);
  if (s2 > 0) {
    const Vec3 nh = sn / std::sqrt(s2);
    Vec3 rm{ri[1], ri[2], ri[3]};
    rm -= dot(rm, nh) * nh;
    ri[1] = rm.x;
    ri[2] = rm.y;
    ri[3] = rm.z;
  }
}

/// Constants of the SA destruction term hoisted out of the node loop.
/// pow(kCw3, 6) is compile-time constant. The r argument saturates to
/// exactly 10.0 wherever stilde <= 0 or the ratio exceeds the cap — i.e.
/// in every (near-)irrotational region. The whole fw chain is then a
/// fixed composition of the same std::pow calls the per-node path would
/// make, so hoisting it preserves every bit while skipping three libm
/// calls on the fast path.
struct SaConsts {
  real_t c6, fw_sat;
};

inline SaConsts sa_consts() {
  const real_t c6 = std::pow(kCw3, 6);
  const real_t g_sat =
      10.0 + kCw2 * (std::pow(real_t(10.0), 6) - real_t(10.0));
  const real_t fw_sat =
      g_sat * std::pow((1.0 + c6) / (std::pow(g_sat, 6) + c6), 1.0 / 6.0);
  return {c6, fw_sat};
}

inline void sa_node(const Level& lvl, real_t mu_lam, const Prim* w,
                    const real_t* nut, const real_t* gb, const SaConsts& sc,
                    std::size_t i, State& ri) {
  const real_t d = std::max(lvl.wall_distance[i], real_t(1e-8));
  const real_t nu = mu_lam / w[i].rho;
  const real_t nt = std::max<real_t>(nut[i], 0);
  // Vorticity magnitude from the Green-Gauss velocity gradients
  // (components read from the gradient block; same dot order as norm()).
  const real_t* const gi = gb + i * kGradStride;
  const real_t ox = gi[6 + 3] - gi[12 + 2];
  const real_t oy = gi[12 + 1] - gi[3];
  const real_t oz = gi[2] - gi[6 + 1];
  const real_t sv = std::sqrt((ox * ox + oy * oy) + oz * oz);
  const real_t chi = nt / nu;
  const real_t chi3 = chi * chi * chi;
  const real_t fv1 = chi3 / (chi3 + kCv1 * kCv1 * kCv1);
  const real_t fv2 = 1.0 - chi / (1.0 + chi * fv1);
  const real_t k2d2 = kKappa * kKappa * d * d;
  real_t stilde = sv + nt / k2d2 * fv2;
  stilde = std::max(stilde, real_t(0.3) * sv);
  const real_t prod = kCb1 * stilde * w[i].rho * nt;
  real_t rr = stilde > 0 ? nt / (stilde * k2d2) : 10.0;
  rr = std::min(rr, real_t(10.0));
  real_t fw;
  if (rr == 10.0) {
    fw = sc.fw_sat;
  } else {
    const real_t g = rr + kCw2 * (std::pow(rr, 6) - rr);
    fw = g * std::pow((1.0 + sc.c6) / (std::pow(g, 6) + sc.c6), 1.0 / 6.0);
  }
  const real_t destr = kCw1 * fw * w[i].rho * (nt / d) * (nt / d);
  ri[5] += lvl.node_volume[i] * (destr - prod);
}

}  // namespace

void boundary_residual(const Level& lvl, const Physics& phys,
                       const Scratch& s, std::vector<State>& res) {
  const std::size_t n = std::size_t(lvl.num_nodes);
  const Prim* const w = s.w.data();
  const real_t* const nut = s.nut.data();
  for_nodes(n,
            [&](std::size_t i) { boundary_node(lvl, phys, w, nut, i, res[i]); });
}

void strong_bc_filter(const Level& lvl, const Physics& phys, int level,
                      std::vector<State>& res) {
  // Strongly-constrained components carry no residual: their equations are
  // replaced by the Dirichlet projection (apply_strong_bcs). Leaving them
  // in would poison the FAS coarse-grid forcing with residuals the fine
  // grid never drives to zero.
  if (level != 0) return;
  const std::size_t n = std::size_t(lvl.num_nodes);
  for_nodes(n, [&](std::size_t i) {
    strong_bc_node(lvl, phys.viscous, i, res[i]);
  });
}

void sa_source(const Level& lvl, const Physics& phys, const Scratch& s,
               std::vector<State>& res) {
  const std::size_t n = std::size_t(lvl.num_nodes);
  const Prim* const w = s.w.data();
  const real_t* const nut = s.nut.data();
  const real_t* const gb = s.gb.data();
  const SaConsts sc = sa_consts();
  for_nodes(n, [&](std::size_t i) {
    sa_node(lvl, phys.mu_lam, w, nut, gb, sc, i, res[i]);
  });
}

void residual(const Level& lvl, const Physics& phys, int level,
              std::span<const State> u, bool second_order, Scratch& s,
              std::vector<State>& res) {
  s.resize(lvl);
  // Fused setup: the prim-cache pass also seeds the gradient/phi blocks and
  // zeroes `res` (same stores the standalone phases make, one sweep fewer
  // over the node arrays).
  res.resize(std::size_t(lvl.num_nodes));
  const bool grads = second_order || phys.viscous;
  if (grads && second_order)
    prim_cache_impl<true, true, true>(lvl, phys, u, s, &res);
  else if (grads)
    prim_cache_impl<true, false, true>(lvl, phys, u, s, &res);
  else
    prim_cache_impl<false, false, true>(lvl, phys, u, s, &res);
  if (grads) gradients_sweep(lvl, s, second_order);
  if (second_order) limiter(lvl, s);
  flux_sweep(lvl, phys, s, second_order, res);
  // Fused node closures: one pass over the nodes applies the boundary
  // fluxes, the strong-BC filter, and the SA source (see the per-node
  // bodies above for why this matches the separate phase kernels bit for
  // bit).
  const std::size_t n = std::size_t(lvl.num_nodes);
  const Prim* const w = s.w.data();
  const real_t* const nut = s.nut.data();
  const real_t* const gb = s.gb.data();
  const SaConsts sc = sa_consts();
  const bool strong = level == 0;
  const bool viscous = phys.viscous;
  for_nodes(n, [&](std::size_t i) {
    State& ri = res[i];
    boundary_node(lvl, phys, w, nut, i, ri);
    if (strong) strong_bc_node(lvl, viscous, i, ri);
    if (viscous) sa_node(lvl, phys.mu_lam, w, nut, gb, sc, i, ri);
  });
}

void wave_speeds(const Level& lvl, const Physics& phys, Scratch& s) {
  const std::size_t n = std::size_t(lvl.num_nodes);
  s.wave.assign(n, 0.0);
  s.snd.resize(n);
  const Prim* const w = s.w.data();
  const real_t* const mut = s.mut.data();
  real_t* const wave = s.wave.data();
  real_t* const snd = s.snd.data();
  const real_t mu_lam = phys.mu_lam;
  const bool viscous = phys.viscous;

  // Per-node sound speed, cached: the scalar path recomputed sqrt(g p/rho)
  // for both endpoints of every edge.
  for_nodes(n, [&](std::size_t i) { snd[i] = w[i].sound_speed(); });

  const index_t* const ea = lvl.edge_a.data();
  const index_t* const eb = lvl.edge_b.data();
  for_edges_colored(lvl, [&](std::size_t e) {
    const std::size_t a = std::size_t(ea[e]);
    const std::size_t b = std::size_t(eb[e]);
    const real_t area = lvl.edge_area[e];
    if (area <= 0) return;
    const Vec3 nh{lvl.edge_ux[e], lvl.edge_uy[e], lvl.edge_uz[e]};
    wave[a] += (std::abs(dot(w[a].vel, nh)) + snd[a]) * area;
    wave[b] += (std::abs(dot(w[b].vel, nh)) + snd[b]) * area;
    if (viscous && lvl.edge_length[e] > 0) {
      // (coef * area) / length — the association differs from coef *
      // edge_geo, so the per-edge division stays.
      const real_t c =
          (mu_lam + 0.5 * (mut[a] + mut[b])) * area / lvl.edge_length[e];
      wave[a] += c / w[a].rho;
      wave[b] += c / w[b].rho;
    }
  });
  for_nodes(n, [&](std::size_t i) {
    Vec3 bn{};
    for (const Vec3& t : lvl.boundary_normal[i]) bn += t;
    const real_t ba = norm(bn);
    if (ba > 0) wave[i] += euler::spectral_radius(w[i], bn / ba) * ba;
  });
}

void assemble_diag(const Level& lvl, const Physics& phys, real_t cfl,
                   std::span<const State> u, Scratch& s) {
  const std::size_t n = std::size_t(lvl.num_nodes);
  s.diag.resize(n);
  const Prim* const w = s.w.data();
  const real_t* const mut = s.mut.data();
  const real_t* const wave = s.wave.data();
  const real_t* const snd = s.snd.data();
  BlockMat<6>* const diag = s.diag.data();
  const real_t mu_lam = phys.mu_lam;
  const bool viscous = phys.viscous;

  for_nodes(n, [&](std::size_t i) {
    const real_t dt =
        wave[i] > 0 ? cfl * lvl.node_volume[i] / wave[i] : 1e30;
    diag[i] = BlockMat<6>::diagonal(lvl.node_volume[i] / dt);
  });
  const index_t* const ea = lvl.edge_a.data();
  const index_t* const eb = lvl.edge_b.data();
  for_edges_colored(lvl, [&](std::size_t e) {
    const std::size_t a = std::size_t(ea[e]);
    const std::size_t b = std::size_t(eb[e]);
    const real_t area = lvl.edge_area[e];
    if (area <= 0) return;
    const Vec3 nh{lvl.edge_ux[e], lvl.edge_uy[e], lvl.edge_uz[e]};
    const real_t lam_a = (std::abs(dot(w[a].vel, nh)) + snd[a]) * area;
    const real_t lam_b = (std::abs(dot(w[b].vel, nh)) + snd[b]) * area;
    // dR_a/du_a += 0.5 (A(w_a, +n) + lambda I); likewise for b with -n.
    const BlockMat<5> ja = euler::flux_jacobian(w[a], lvl.edge_normal[e]);
    const BlockMat<5> jb =
        euler::flux_jacobian(w[b], -1.0 * lvl.edge_normal[e]);
    for (int rr = 0; rr < 5; ++rr)
      for (int cc = 0; cc < 5; ++cc) {
        diag[a](rr, cc) += 0.5 * ja(rr, cc);
        diag[b](rr, cc) += 0.5 * jb(rr, cc);
      }
    for (int rr = 0; rr < 5; ++rr) {
      diag[a](rr, rr) += 0.5 * lam_a;
      diag[b](rr, rr) += 0.5 * lam_b;
    }
    diag[a](5, 5) += 0.5 * lam_a;
    diag[b](5, 5) += 0.5 * lam_b;
    if (viscous && lvl.edge_geo[e] > 0) {
      const real_t geo = lvl.edge_geo[e];
      const real_t cm = (mu_lam + 0.5 * (mut[a] + mut[b])) * geo;
      const real_t cs =
          (mu_lam + 0.5 * (u[a][5] + u[b][5])) / kSigma * geo;
      for (std::size_t s2 : {a, b}) {
        for (int rr = 1; rr <= 4; ++rr) diag[s2](rr, rr) += cm;
        diag[s2](5, 5) += cs;
      }
    }
  });
  // Farfield linearization keeps boundary nodes well conditioned.
  for_nodes(n, [&](std::size_t i) {
    Vec3 bn{};
    for (const Vec3& t : lvl.boundary_normal[i]) bn += t;
    const real_t ba = norm(bn);
    if (ba > 0) {
      const real_t lam = euler::spectral_radius(w[i], bn / ba) * ba;
      for (int rr = 0; rr < 6; ++rr) diag[i](rr, rr) += 0.5 * lam;
    }
  });
}

namespace {

BlockVec<6> rhs_of(std::span<const State> f, std::span<const State> r,
                   std::size_t i) {
  BlockVec<6> rhs;
  for (int c = 0; c < 6; ++c) rhs[c] = f[i][std::size_t(c)] - r[i][std::size_t(c)];
  return rhs;
}

void apply_update(std::vector<State>& u, std::size_t i, real_t relax,
                  const BlockVec<6>& du) {
  State unew = u[i];
  for (int c = 0; c < 6; ++c) unew[std::size_t(c)] += relax * du[c];
  unew[5] = std::max<real_t>(unew[5], 0);
  if (state_valid(unew)) u[i] = unew;
}

}  // namespace

void point_sweep(const Level& lvl, real_t relax, std::span<const State> f,
                 std::span<const State> r, Scratch& s, std::vector<State>& u) {
  const std::size_t n = std::size_t(lvl.num_nodes);
  const BlockMat<6>* const diag = s.diag.data();
  for_nodes(n, [&](std::size_t i) {
    BlockLU<6> lu;
    if (!lu.factor_status(diag[i])) {
      // Singular point: skip the update (explicit fallback) but make
      // the event visible instead of silently dropping it.
      OBS_COUNT("resil.singular_pivot", 1);
      return;
    }
    apply_update(u, i, relax, lu.solve(rhs_of(f, r, i)));
  });
}

void line_sweep(const Level& lvl, const Physics& phys, real_t relax,
                std::span<const State> f, std::span<const State> r,
                Scratch& s, std::vector<State>& u) {
  // Block-tridiagonal solve along each implicit line; off-line couplings
  // stay explicit (Jacobi) as in the paper's scheme. Lines are
  // node-disjoint, so they solve in parallel; each pool thread uses its
  // own factorization scratch.
  smp::ThreadPool& pool = smp::ThreadPool::global();
  if (s.line_scratch.size() < std::size_t(pool.num_threads()))
    s.line_scratch.resize(std::size_t(pool.num_threads()));
  const Prim* const w = s.w.data();
  const real_t* const mut = s.mut.data();
  const BlockMat<6>* const diag = s.diag.data();
  const real_t mu_lam = phys.mu_lam;
  const bool viscous = phys.viscous;
  const auto& all_lines = lvl.lines.lines;
  OBS_COUNT("nsu3d.line_solves", all_lines.size());
  pool.parallel_for(0, all_lines.size(), kLineGrain,
                    [&](std::size_t lb, std::size_t le, int tid) {
    Scratch::LineScratch& ls = s.line_scratch[std::size_t(tid)];
    for (std::size_t li = lb; li < le; ++li) {
      const auto& line = all_lines[li];
      const auto& ledges = lvl.line_edges[li];
      const std::size_t len = line.size();
      ls.lower.assign(len, BlockMat<6>{});
      ls.dd.assign(len, BlockMat<6>{});
      ls.upper.assign(len, BlockMat<6>{});
      ls.rhs.assign(len, BlockVec<6>{});
      auto& lower = ls.lower;
      auto& dd = ls.dd;
      auto& upper = ls.upper;
      auto& rhs = ls.rhs;
      for (std::size_t k = 0; k < len; ++k) {
        const std::size_t i = std::size_t(line[k]);
        dd[k] = diag[i];
        rhs[k] = rhs_of(f, r, i);
      }
      // Off-diagonal blocks for consecutive line nodes; the connecting
      // edge was located once at level construction (Level::line_edges).
      for (std::size_t k = 0; k + 1 < len; ++k) {
        const auto [eid, sgn] = ledges[k];
        if (eid == kInvalidIndex) continue;
        const std::size_t ei = std::size_t(eid);
        const real_t area = lvl.edge_area[ei];
        if (area <= 0) continue;
        const std::size_t i = std::size_t(line[k]);
        const std::size_t j = std::size_t(line[k + 1]);
        const Vec3 n_out = sgn * lvl.edge_normal[ei];
        // n_out/area == sgn * edge_unit bitwise (sgn is +-1).
        const Vec3 nh = sgn * lvl.edge_unit[ei];
        // dR_i/du_j = 0.5 (A(w_j, n_out) - lambda_j I).
        const BlockMat<5> jj = euler::flux_jacobian(w[j], n_out);
        const real_t lam = euler::spectral_radius(w[j], nh) * area;
        BlockMat<6> off;
        for (int rr = 0; rr < 5; ++rr) {
          for (int cc = 0; cc < 5; ++cc) off(rr, cc) = 0.5 * jj(rr, cc);
          off(rr, rr) -= 0.5 * lam;
        }
        off(5, 5) -= 0.5 * lam;
        real_t cm = 0, cs = 0;
        const bool visc_edge = viscous && lvl.edge_geo[ei] > 0;
        if (visc_edge) {
          const real_t geo = lvl.edge_geo[ei];
          cm = (mu_lam + 0.5 * (mut[i] + mut[j])) * geo;
          cs = (mu_lam + 0.5 * (u[i][5] + u[j][5])) / kSigma * geo;
          for (int rr = 1; rr <= 4; ++rr) off(rr, rr) -= cm;
          off(5, 5) -= cs;
        }
        upper[k] = off;
        // dR_j/du_i: mirrored with w_i and the opposite normal.
        const BlockMat<5> ji = euler::flux_jacobian(w[i], -1.0 * n_out);
        const real_t lam_i = euler::spectral_radius(w[i], nh) * area;
        BlockMat<6> offl;
        for (int rr = 0; rr < 5; ++rr) {
          for (int cc = 0; cc < 5; ++cc) offl(rr, cc) = 0.5 * ji(rr, cc);
          offl(rr, rr) -= 0.5 * lam_i;
        }
        offl(5, 5) -= 0.5 * lam_i;
        if (visc_edge) {
          for (int rr = 1; rr <= 4; ++rr) offl(rr, rr) -= cm;
          offl(5, 5) -= cs;
        }
        lower[k + 1] = offl;
      }
      if (!linalg::solve_block_tridiag_status<6>(lower, dd, upper, rhs)) {
        OBS_COUNT("resil.singular_pivot", 1);
        continue;
      }
      for (std::size_t k = 0; k < len; ++k)
        apply_update(u, std::size_t(line[k]), relax, rhs[k]);
    }
  });
}

namespace {

/// Scalar component c of the reconstruction set [rho, u, v, w, p, nut]
/// (the reference path's per-component switch, retained verbatim).
real_t prim_scalar(const Prim& w, real_t nut, int c) {
  switch (c) {
    case 0: return w.rho;
    case 1: return w.vel.x;
    case 2: return w.vel.y;
    case 3: return w.vel.z;
    case 4: return w.p;
    default: return nut;
  }
}

}  // namespace

void residual_reference(const Level& lvl, const Physics& phys, int level,
                        std::span<const State> u, bool second_order,
                        ReferenceScratch& ws, std::vector<State>& res) {
  const std::size_t n = std::size_t(lvl.num_nodes);
  const real_t mu_lam = phys.mu_lam;
  const bool viscous = phys.viscous;
  res.assign(n, State{});

  // Primitive caches.
  ws.w.resize(n);
  ws.nut.resize(n);
  ws.mut.resize(n);
  auto& w = ws.w;
  auto& nut = ws.nut;
  auto& mut = ws.mut;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = mean_prim(u[i]);
    nut[i] = u[i][5] / u[i][0];
    mut[i] =
        viscous ? eddy_viscosity(w[i].rho, nut[i], mu_lam / w[i].rho) : 0.0;
  }

  // Green-Gauss gradients of [rho, u, v, w, p, nut].
  const bool need_grad = second_order || viscous;
  auto& grad = ws.grad;
  if (need_grad) {
    grad.assign(n, {});
    for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
      const auto [a, b] = lvl.edges[e];
      const Vec3& nrm = lvl.edge_normal[e];
      for (int c = 0; c < 6; ++c) {
        const real_t qf =
            0.5 * (prim_scalar(w[std::size_t(a)], nut[std::size_t(a)], c) +
                   prim_scalar(w[std::size_t(b)], nut[std::size_t(b)], c));
        grad[std::size_t(a)][std::size_t(c)] += qf * nrm;
        grad[std::size_t(b)][std::size_t(c)] -= qf * nrm;
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      Vec3 bn{};
      for (const Vec3& t : lvl.boundary_normal[i]) bn += t;
      for (int c = 0; c < 6; ++c) {
        grad[i][std::size_t(c)] += prim_scalar(w[i], nut[i], c) * bn;
        grad[i][std::size_t(c)] = grad[i][std::size_t(c)] /
                                  std::max(lvl.node_volume[i], real_t(1e-300));
      }
    }
  }

  // Venkatakrishnan limiter for the fine-level reconstruction.
  auto& phi = ws.phi;
  if (second_order) {
    auto& qmin = ws.qmin;
    auto& qmax = ws.qmax;
    qmin.resize(n);
    qmax.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      for (int c = 0; c < 6; ++c)
        qmin[i][std::size_t(c)] = qmax[i][std::size_t(c)] =
            prim_scalar(w[i], nut[i], c);
    for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
      const auto [a, b] = lvl.edges[e];
      for (int c = 0; c < 6; ++c) {
        const real_t qa =
            prim_scalar(w[std::size_t(a)], nut[std::size_t(a)], c);
        const real_t qb =
            prim_scalar(w[std::size_t(b)], nut[std::size_t(b)], c);
        auto& mna = qmin[std::size_t(a)][std::size_t(c)];
        auto& mxa = qmax[std::size_t(a)][std::size_t(c)];
        auto& mnb = qmin[std::size_t(b)][std::size_t(c)];
        auto& mxb = qmax[std::size_t(b)][std::size_t(c)];
        mna = std::min(mna, qb);
        mxa = std::max(mxa, qb);
        mnb = std::min(mnb, qa);
        mxb = std::max(mxb, qa);
      }
    }
    phi.assign(n, {1, 1, 1, 1, 1, 1});
    for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
      const auto [a, b] = lvl.edges[e];
      const Vec3& dab = lvl.edge_dab[e];
      const real_t eps2 = lvl.edge_eps2[e];
      for (int side = 0; side < 2; ++side) {
        const std::size_t i = std::size_t(side == 0 ? a : b);
        const Vec3 d = side == 0 ? dab : -1.0 * dab;
        for (int c = 0; c < 6; ++c) {
          const real_t dq = dot(grad[i][std::size_t(c)], d);
          real_t lim = 1.0;
          if (dq > 1e-14)
            lim = venkat(qmax[i][std::size_t(c)] - prim_scalar(w[i], nut[i], c),
                         dq, eps2);
          else if (dq < -1e-14)
            lim = venkat(prim_scalar(w[i], nut[i], c) - qmin[i][std::size_t(c)],
                         -dq, eps2);
          phi[i][std::size_t(c)] = std::min(phi[i][std::size_t(c)], lim);
        }
      }
    }
  }

  auto reconstruct = [&](std::size_t i, const Vec3& d,
                         real_t& nut_out) -> Prim {
    nut_out = nut[i];
    if (!second_order) return w[i];
    std::array<real_t, 6> q{w[i].rho, w[i].vel.x, w[i].vel.y, w[i].vel.z,
                            w[i].p, nut[i]};
    for (int c = 0; c < 6; ++c)
      q[std::size_t(c)] +=
          phi[i][std::size_t(c)] * dot(grad[i][std::size_t(c)], d);
    if (q[0] <= 0 || q[4] <= 0) return w[i];
    nut_out = q[5];
    return Prim{q[0], {q[1], q[2], q[3]}, q[4]};
  };

  // Edge loop: convective + viscous fluxes (per-edge geometry divisions as
  // in the seed; this is the baseline micro_kernels measures against).
  for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
    const auto [ai, bi] = lvl.edges[e];
    const std::size_t a = std::size_t(ai), b = std::size_t(bi);
    const real_t area = lvl.edge_area[e];
    if (area <= 0) continue;
    const Vec3& nh = lvl.edge_unit[e];
    const Vec3& dab = lvl.edge_dab[e];
    real_t nut_l, nut_r;
    const Prim wl = reconstruct(a, dab, nut_l);
    const Prim wr = reconstruct(b, -1.0 * dab, nut_r);
    const euler::Cons flux = euler::numerical_flux(wl, wr, nh, phys.flux);
    const real_t mdot = flux[0] * area;
    const real_t fnut = mdot * (mdot >= 0 ? nut_l : nut_r);
    for (std::size_t c = 0; c < 5; ++c) {
      res[a][c] += area * flux[c];
      res[b][c] -= area * flux[c];
    }
    res[a][5] += fnut;
    res[b][5] -= fnut;

    if (viscous && lvl.edge_length[e] > 0) {
      const real_t geo = area / lvl.edge_length[e];
      const real_t mu_m = mu_lam + 0.5 * (mut[a] + mut[b]);
      const real_t cm = mu_m * geo;
      const Vec3 dvel = w[b].vel - w[a].vel;
      res[a][1] -= cm * dvel.x;
      res[a][2] -= cm * dvel.y;
      res[a][3] -= cm * dvel.z;
      res[b][1] += cm * dvel.x;
      res[b][2] += cm * dvel.y;
      res[b][3] += cm * dvel.z;
      const real_t ck =
          (mu_lam / kPrandtl + 0.5 * (mut[a] + mut[b]) / kPrandtlTurb) *
          euler::kGamma / (euler::kGamma - 1) * geo;
      const real_t dT = w[b].p / w[b].rho - w[a].p / w[a].rho;
      const Vec3 vm = 0.5 * (w[a].vel + w[b].vel);
      const real_t dke = dot(vm, dvel);
      res[a][4] -= ck * dT + cm * dke;
      res[b][4] += ck * dT + cm * dke;
      const real_t rho_m = 0.5 * (w[a].rho + w[b].rho);
      const real_t nu_m = mu_lam / rho_m;
      const real_t nut_m = 0.5 * (nut[a] + nut[b]);
      const real_t cs =
          rho_m * (nu_m + std::max<real_t>(nut_m, 0)) / kSigma * geo;
      const real_t dnt = nut[b] - nut[a];
      res[a][5] -= cs * dnt;
      res[b][5] += cs * dnt;
    }
  }

  // Boundary closures.
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3& fn =
        lvl.boundary_normal[i][std::size_t(mesh::BoundaryTag::Farfield)];
    const real_t fa = norm(fn);
    if (fa > 0) {
      const Vec3 nh = fn / fa;
      const euler::Cons flux =
          euler::farfield_flux(w[i], phys.freestream, nh, phys.flux);
      for (std::size_t c = 0; c < 5; ++c) res[i][c] += fa * flux[c];
      const real_t mdot = flux[0] * fa;
      res[i][5] += mdot * (mdot >= 0 ? nut[i] : phys.nut_inf);
    }
    for (mesh::BoundaryTag tag :
         {mesh::BoundaryTag::Wall, mesh::BoundaryTag::Symmetry}) {
      const Vec3& bn = lvl.boundary_normal[i][std::size_t(tag)];
      if (dot(bn, bn) > 0) {
        const euler::Cons flux = euler::wall_flux(w[i], bn);
        for (std::size_t c = 0; c < 5; ++c) res[i][c] += flux[c];
      }
    }
  }

  // Strong-BC residual projection.
  if (level == 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (viscous && lvl.is_wall_node(index_t(i))) {
        res[i][1] = res[i][2] = res[i][3] = 0;
        res[i][5] = 0;
        continue;
      }
      const Vec3& sn =
          lvl.boundary_normal[i][std::size_t(mesh::BoundaryTag::Symmetry)];
      const real_t s2 = dot(sn, sn);
      if (s2 > 0) {
        const Vec3 nh = sn / std::sqrt(s2);
        Vec3 rm{res[i][1], res[i][2], res[i][3]};
        rm -= dot(rm, nh) * nh;
        res[i][1] = rm.x;
        res[i][2] = rm.y;
        res[i][3] = rm.z;
      }
    }
  }

  // SA source terms (production - destruction), volume-scaled.
  if (viscous) {
    for (std::size_t i = 0; i < n; ++i) {
      const real_t d = std::max(lvl.wall_distance[i], real_t(1e-8));
      const real_t nu = mu_lam / w[i].rho;
      const real_t nt = std::max<real_t>(nut[i], 0);
      const Vec3 gx = grad[i][1], gy = grad[i][2], gz = grad[i][3];
      const Vec3 omega{gz.y - gy.z, gx.z - gz.x, gy.x - gx.y};
      const real_t sv = norm(omega);
      const real_t chi = nt / nu;
      const real_t chi3 = chi * chi * chi;
      const real_t fv1 = chi3 / (chi3 + kCv1 * kCv1 * kCv1);
      const real_t fv2 = 1.0 - chi / (1.0 + chi * fv1);
      const real_t k2d2 = kKappa * kKappa * d * d;
      real_t stilde = sv + nt / k2d2 * fv2;
      stilde = std::max(stilde, real_t(0.3) * sv);
      const real_t prod = kCb1 * stilde * w[i].rho * nt;
      real_t rr = stilde > 0 ? nt / (stilde * k2d2) : 10.0;
      rr = std::min(rr, real_t(10.0));
      const real_t g = rr + kCw2 * (std::pow(rr, 6) - rr);
      const real_t c6 = std::pow(kCw3, 6);
      const real_t fw =
          g * std::pow((1.0 + c6) / (std::pow(g, 6) + c6), 1.0 / 6.0);
      const real_t destr = kCw1 * fw * w[i].rho * (nt / d) * (nt / d);
      res[i][5] += lvl.node_volume[i] * (destr - prod);
    }
  }
}

}  // namespace columbia::nsu3d::kernels
