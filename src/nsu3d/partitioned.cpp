#include "nsu3d/partitioned.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "graph/agglomerate.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "obs/obs.hpp"
#include "smp/pool.hpp"
#include "support/assert.hpp"

namespace columbia::nsu3d {

using geom::Vec3;

core::RequestLists halo_requests(const Level& lvl,
                                 std::span<const index_t> part,
                                 index_t nparts) {
  const std::size_t np = std::size_t(nparts);
  // Every cross-partition edge makes each endpoint a ghost of the other
  // side. Deduplicate and sort by (owner, node): a partition fetches each
  // ghost once per exchange, packed per neighbor (Fig. 6a).
  std::vector<std::vector<std::pair<index_t, index_t>>> want(np);
  for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
    const auto [a, b] = lvl.edges[e];
    const index_t pa = part[std::size_t(a)];
    const index_t pb = part[std::size_t(b)];
    if (pa == pb) continue;
    want[std::size_t(pa)].push_back({pb, b});
    want[std::size_t(pb)].push_back({pa, a});
  }
  core::RequestLists requests(np);
  for (index_t p = 0; p < nparts; ++p) {
    auto& w = want[std::size_t(p)];
    std::sort(w.begin(), w.end());
    w.erase(std::unique(w.begin(), w.end()), w.end());
    requests[std::size_t(p)].reserve(w.size());
    for (const auto& [owner, node] : w)
      requests[std::size_t(p)].push_back({owner, node});
  }
  return requests;
}

PartitionPlan build_partition_plan(const std::vector<Level>& levels,
                                   index_t nparts, std::uint64_t seed) {
  COLUMBIA_REQUIRE(!levels.empty() && nparts >= 1);
  const std::size_t np = std::size_t(nparts);
  PartitionPlan plan;
  plan.nparts = nparts;

  std::vector<index_t> prev_part;  // finer level's partition
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const Level& lvl = levels[l];
    LevelDecomposition dec;
    dec.nparts = nparts;

    graph::PartitionOptions popt;
    popt.seed = seed + l;

    if (l == 0 && lvl.lines.longest() > 1) {
      // Contract implicit lines so partitions never break them (Fig. 6b).
      std::vector<real_t> weights(lvl.edges.size());
      for (std::size_t e = 0; e < lvl.edges.size(); ++e)
        weights[e] = lvl.edge_length[e] > 0
                         ? norm(lvl.edge_normal[e]) / lvl.edge_length[e]
                         : 0.0;
      const graph::Csr g = graph::Csr::from_weighted_edges(
          lvl.num_nodes, lvl.edges, weights);
      const graph::ContractedGraph cg = graph::contract_lines(g, lvl.lines);
      const auto line_part = graph::partition(cg.graph, nparts, popt);
      dec.part = graph::expand_line_partition(cg, line_part);
    } else {
      const graph::Csr g = graph::Csr::from_edges(lvl.num_nodes, lvl.edges);
      dec.part = graph::partition(g, nparts, popt);
    }

    // Coarse levels: relabel to overlap the finer level's partitions
    // (paper: greedy matching by degree of overlap).
    if (l > 0) {
      dec.part = graph::match_partitions(prev_part, levels[l - 1].to_coarse,
                                         dec.part, nparts);
    }

    // Work statistics.
    std::vector<index_t> count(np, 0);
    for (index_t p : dec.part) ++count[std::size_t(p)];
    index_t max_nodes = 0;
    for (index_t c : count) {
      max_nodes = std::max(max_nodes, c);
      if (c == 0) ++dec.empty_parts;
    }
    dec.max_part_nodes = real_t(max_nodes);
    dec.avg_part_nodes = real_t(lvl.num_nodes) / real_t(nparts);

    // Halo statistics: ghosts per part and communication degree, read off
    // the exchange schedule this decomposition implies.
    const core::ExchangePlan xplan(halo_requests(lvl, dec.part, nparts));
    dec.max_ghost_nodes = real_t(xplan.max_ghost_items());
    dec.total_ghost_nodes = real_t(xplan.total_ghost_items());
    dec.max_comm_degree = xplan.max_neighbors();

    plan.levels.push_back(std::move(dec));
    prev_part = plan.levels.back().part;
  }

  // Inter-grid statistics (fine node -> coarse agglomerate on another part).
  for (std::size_t l = 0; l + 1 < levels.size(); ++l) {
    const Level& fine = levels[l];
    const auto& fpart = plan.levels[l].part;
    const auto& cpart = plan.levels[l + 1].part;
    std::vector<std::set<index_t>> ig_neighbors(np, std::set<index_t>{});
    std::vector<real_t> per_part(np, 0.0);
    real_t items = 0;
    for (index_t v = 0; v < fine.num_nodes; ++v) {
      const index_t fp = fpart[std::size_t(v)];
      const index_t cp = cpart[std::size_t(fine.to_coarse[std::size_t(v)])];
      if (fp == cp) continue;
      items += 1;
      per_part[std::size_t(fp)] += 1;
      ig_neighbors[std::size_t(fp)].insert(cp);
      ig_neighbors[std::size_t(cp)].insert(fp);
    }
    plan.levels[l].intergrid_items = items;
    for (real_t pp : per_part)
      plan.levels[l].max_intergrid_items =
          std::max(plan.levels[l].max_intergrid_items, pp);
    for (index_t p = 0; p < nparts; ++p)
      plan.levels[l].intergrid_degree =
          std::max(plan.levels[l].intergrid_degree,
                   index_t(ig_neighbors[std::size_t(p)].size()));
  }
  return plan;
}

bool lines_unbroken(const Level& fine, std::span<const index_t> part) {
  for (const auto& line : fine.lines.lines) {
    for (index_t v : line)
      if (part[std::size_t(v)] != part[std::size_t(line[0])]) return false;
  }
  return true;
}

std::vector<State> parallel_residual(const Level& lvl,
                                     const std::vector<State>& u,
                                     const euler::Prim& freestream,
                                     std::span<const index_t> part,
                                     index_t nparts,
                                     const core::ExchangePlanOptions& comm,
                                     bool overlap) {
  const std::size_t n = std::size_t(lvl.num_nodes);
  const std::size_t np = std::size_t(nparts);
  COLUMBIA_REQUIRE(part.size() == n);

  // Slot of every node in its owner's packed state array (owned nodes in
  // ascending id order) — the item space both exchange plans address.
  std::vector<index_t> slot(n, 0);
  std::vector<index_t> owned_count(np, 0);
  for (std::size_t v = 0; v < n; ++v) {
    slot[v] = owned_count[std::size_t(part[v])]++;
  }

  // Interior/boundary edge split per rank (Jackson & Campobasso overlap
  // scheme): an owned edge is interior iff its far endpoint is also owned,
  // so the interior list plus every node closure runs without ghost data.
  // Both lists keep ascending edge order; interior always runs first, so
  // the accumulation order is a fixed property of the decomposition, not
  // of whether the exchange was blocking or in flight.
  std::vector<std::vector<index_t>> interior_edges(np), boundary_edges(np);
  std::vector<std::vector<index_t>> owned_nodes(np);
  for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
    const auto [a, b] = lvl.edges[e];
    const index_t pa = part[std::size_t(a)];
    auto& side = part[std::size_t(b)] == pa ? interior_edges : boundary_edges;
    side[std::size_t(pa)].push_back(index_t(e));
  }
  for (std::size_t v = 0; v < n; ++v)
    owned_nodes[std::size_t(part[v])].push_back(index_t(v));

  // Ghost-state schedule: six components per ghost node, addressed into
  // the owner's packed array. The packed arrays are component-major
  // (component plane c starts at c * owned_count), and the requests are
  // emitted c-major, so consecutive requests against one owner walk a
  // single plane in ascending slot order (unit-stride gather runs).
  const core::RequestLists ghosts = halo_requests(lvl, part, nparts);
  core::RequestLists reqs1(np);
  for (index_t p = 0; p < nparts; ++p) {
    const auto& g = ghosts[std::size_t(p)];
    reqs1[std::size_t(p)].reserve(g.size() * 6);
    for (index_t c = 0; c < 6; ++c)
      for (const core::HaloRequest& r : g)
        reqs1[std::size_t(p)].push_back(
            {r.from_partition,
             c * owned_count[std::size_t(r.from_partition)] +
                 slot[std::size_t(r.item)]});
  }
  core::ExchangePlan plan1(std::move(reqs1), comm);

  // Residual-contribution lists: contrib[p][q] = nodes owned by q whose
  // residual partition p accumulates (p owns cross edges touching them),
  // deduplicated and sorted for deterministic packing.
  std::vector<std::map<index_t, std::vector<index_t>>> contrib(
      np, std::map<index_t, std::vector<index_t>>{});
  for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
    const auto [a, b] = lvl.edges[e];
    const index_t pa = part[std::size_t(a)];
    const index_t pb = part[std::size_t(b)];
    if (pa == pb) continue;
    // Owner of the edge: pa (a < b by construction); it accumulates b's
    // share and returns it to pb.
    contrib[std::size_t(pa)][pb].push_back(b);
  }
  for (auto& per_rank : contrib)
    for (auto& [q, nodes] : per_rank) {
      std::sort(nodes.begin(), nodes.end());
      nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    }

  // Contribution buffers are packed per sender in (receiver asc, node asc)
  // order; coff[p][q] = first slot of the block bound for q.
  std::vector<std::map<index_t, index_t>> coff(np);
  std::vector<index_t> contrib_count(np, 0);
  for (index_t p = 0; p < nparts; ++p) {
    index_t off = 0;
    for (const auto& [q, nodes] : contrib[std::size_t(p)]) {
      coff[std::size_t(p)][q] = off;
      off += index_t(nodes.size());
    }
    contrib_count[std::size_t(p)] = off;
  }
  core::RequestLists reqs2(np);
  for (index_t p = 0; p < nparts; ++p)
    for (index_t q = 0; q < nparts; ++q) {
      const auto it = contrib[std::size_t(q)].find(p);
      if (it == contrib[std::size_t(q)].end()) continue;
      const index_t base = coff[std::size_t(q)].at(p);
      for (index_t c = 0; c < 6; ++c)
        for (std::size_t k = 0; k < it->second.size(); ++k)
          reqs2[std::size_t(p)].push_back(
              {q, c * contrib_count[std::size_t(q)] + base + index_t(k)});
    }
  core::ExchangePlan plan2(std::move(reqs2), comm);

  // Per-edge flux accumulation shared by the interior and boundary phases;
  // `state_of` resolves the far endpoint (owned array or ghost scatter).
  auto flux_edge = [&](std::size_t e, auto&& state_of, auto&& prim_of,
                       std::vector<State>& res) {
    const auto [a, b] = lvl.edges[e];
    const real_t area = norm(lvl.edge_normal[e]);
    if (area <= 0) return;
    const Vec3 nh = lvl.edge_normal[e] / area;
    const euler::Prim wl = prim_of(a);
    const euler::Prim wr = prim_of(b);
    const euler::Cons flux =
        euler::numerical_flux(wl, wr, nh, euler::FluxScheme::Roe);
    const real_t mdot = flux[0] * area;
    const real_t nut_l = state_of(a)[5] / wl.rho;
    const real_t nut_r = state_of(b)[5] / wr.rho;
    const real_t fnut = mdot * (mdot >= 0 ? nut_l : nut_r);
    for (int c = 0; c < 5; ++c) {
      res[std::size_t(a)][std::size_t(c)] += area * flux[std::size_t(c)];
      res[std::size_t(b)][std::size_t(c)] -= area * flux[std::size_t(c)];
    }
    res[std::size_t(a)][5] += fnut;
    res[std::size_t(b)][5] -= fnut;
  };

  // Phase 1: pack owned states and post the ghost fetch (one packed
  // message per neighbor pair). In blocking mode the exchange completes
  // here; in overlap mode it completes after the interior phase. The
  // compute sequence is identical either way.
  core::PartitionData state_data(np);
  for (index_t p = 0; p < nparts; ++p)
    state_data[std::size_t(p)].resize(std::size_t(owned_count[std::size_t(p)]) * 6);
  for (std::size_t c = 0; c < 6; ++c)
    for (std::size_t v = 0; v < n; ++v)
      state_data[std::size_t(part[v])]
                [c * std::size_t(owned_count[std::size_t(part[v])]) +
                 std::size_t(slot[v])] = u[v][c];
  plan1.post(state_data);
  const core::PartitionData* ghost_vals = overlap ? nullptr : &plan1.finish();

  // Phase 2a (interior): flux accumulation over owned interior edges and
  // the node-local boundary closures, one rank per partition on the thread
  // pool. Touches no ghost data, so it runs while the exchange is in
  // flight. Interior edges owned by other ranks but touching my nodes are
  // accumulated remotely and returned through plan2 below.
  std::vector<std::vector<State>> res_of(np);
  smp::ThreadPool::global().parallel_for(
      0, np, 1, [&](std::size_t pb, std::size_t pe, int) {
        // Level-tagged interior compute: the comm observatory's overlap
        // analyzer measures this span against the halo.xchg waits on the
        // same level to report coverable headroom.
        OBS_SPAN("nsu3d.partitioned.compute", "level",
                 std::int64_t(comm.level));
        for (std::size_t mep = pb; mep < pe; ++mep) {
          auto owned_state = [&](index_t v) -> const State& {
            return u[std::size_t(v)];
          };
          auto owned_prim = [&](index_t v) {
            const State& s = u[std::size_t(v)];
            const real_t inv = 1.0 / s[0];
            const Vec3 vel{s[1] * inv, s[2] * inv, s[3] * inv};
            const real_t p =
                (euler::kGamma - 1) * (s[4] - 0.5 * s[0] * dot(vel, vel));
            return euler::Prim{s[0], vel, p};
          };

          std::vector<State> res(n, State{});
          for (const index_t e : interior_edges[mep])
            flux_edge(std::size_t(e), owned_state, owned_prim, res);
          for (const index_t v : owned_nodes[mep]) {
            const euler::Prim w = owned_prim(v);
            const Vec3& fn = lvl.boundary_normal[std::size_t(v)]
                                                [std::size_t(mesh::BoundaryTag::Farfield)];
            const real_t fa = norm(fn);
            if (fa > 0) {
              const euler::Cons flux = euler::farfield_flux(
                  w, freestream, fn / fa, euler::FluxScheme::Roe);
              for (int c = 0; c < 5; ++c)
                res[std::size_t(v)][std::size_t(c)] += fa * flux[std::size_t(c)];
              const real_t mdot = flux[0] * fa;
              res[std::size_t(v)][5] +=
                  mdot * (mdot >= 0 ? u[std::size_t(v)][5] / w.rho : 0.0);
            }
            for (mesh::BoundaryTag tag :
                 {mesh::BoundaryTag::Wall, mesh::BoundaryTag::Symmetry}) {
              const Vec3& bn =
                  lvl.boundary_normal[std::size_t(v)][std::size_t(tag)];
              if (dot(bn, bn) > 0) {
                const euler::Cons flux = euler::wall_flux(w, bn);
                for (int c = 0; c < 5; ++c)
                  res[std::size_t(v)][std::size_t(c)] += flux[std::size_t(c)];
              }
            }
          }
          res_of[mep] = std::move(res);
        }
      });

  // Overlap mode: the interior work is done — now wait out the exchange.
  if (overlap) ghost_vals = &plan1.finish();

  // Phase 2b (boundary): scatter each rank's ghost block and accumulate
  // the halo-adjacent edges, in the same ascending edge order as 2a.
  smp::ThreadPool::global().parallel_for(
      0, np, 1, [&](std::size_t pb, std::size_t pe, int) {
        OBS_SPAN("nsu3d.partitioned.compute", "level",
                 std::int64_t(comm.level));
        for (std::size_t mep = pb; mep < pe; ++mep) {
          const index_t me = index_t(mep);
          std::vector<State> ghost(n, State{});  // sparse by construction
          const auto& g = ghosts[mep];
          const auto& got = (*ghost_vals)[mep];
          for (std::size_t c = 0; c < 6; ++c)
            for (std::size_t k = 0; k < g.size(); ++k)
              ghost[std::size_t(g[k].item)][c] = got[c * g.size() + k];

          auto state_of = [&](index_t v) -> const State& {
            return part[std::size_t(v)] == me ? u[std::size_t(v)]
                                              : ghost[std::size_t(v)];
          };
          auto prim_of = [&](index_t v) {
            const State& s = state_of(v);
            const real_t inv = 1.0 / s[0];
            const Vec3 vel{s[1] * inv, s[2] * inv, s[3] * inv};
            const real_t p =
                (euler::kGamma - 1) * (s[4] - 0.5 * s[0] * dot(vel, vel));
            return euler::Prim{s[0], vel, p};
          };

          auto& res = res_of[mep];
          for (const index_t e : boundary_edges[mep])
            flux_edge(std::size_t(e), state_of, prim_of, res);
        }
      });

  // Phase 3: return ghost-vertex residual contributions to their owners
  // (the packed send of Fig. 6a's accumulate step) through the second
  // plan; the owned-row copy is the interior work that hides the return
  // trip in overlap mode.
  core::PartitionData contrib_data(np);
  for (index_t p = 0; p < nparts; ++p) {
    auto& buf = contrib_data[std::size_t(p)];
    buf.resize(std::size_t(contrib_count[std::size_t(p)]) * 6);
    std::size_t w = 0;
    for (std::size_t c = 0; c < 6; ++c)
      for (const auto& [q, nodes] : contrib[std::size_t(p)])
        for (index_t v : nodes)
          buf[w++] = res_of[std::size_t(p)][std::size_t(v)][c];
  }
  plan2.post(contrib_data);
  const core::PartitionData* returned = overlap ? nullptr : &plan2.finish();

  std::vector<State> result(n, State{});
  for (std::size_t v = 0; v < n; ++v)
    result[v] = res_of[std::size_t(part[v])][v];
  if (overlap) returned = &plan2.finish();

  for (index_t p = 0; p < nparts; ++p) {
    const auto& got = (*returned)[std::size_t(p)];
    std::size_t k = 0;
    for (index_t q = 0; q < nparts; ++q) {
      const auto it = contrib[std::size_t(q)].find(p);
      if (it == contrib[std::size_t(q)].end()) continue;
      // c-major to match the request emission; per (node, component)
      // element the adds still arrive in ascending-q order, so the
      // assembled sums are bit-identical to the node-major packing.
      for (std::size_t c = 0; c < 6; ++c)
        for (index_t v : it->second)
          result[std::size_t(v)][c] += got[k++];
    }
  }
  return result;
}

}  // namespace columbia::nsu3d
