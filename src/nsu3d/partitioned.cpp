#include "nsu3d/partitioned.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "graph/agglomerate.hpp"
#include "graph/csr.hpp"
#include "graph/partition.hpp"
#include "support/assert.hpp"

namespace columbia::nsu3d {

using geom::Vec3;

PartitionPlan build_partition_plan(const std::vector<Level>& levels,
                                   index_t nparts, std::uint64_t seed) {
  COLUMBIA_REQUIRE(!levels.empty() && nparts >= 1);
  PartitionPlan plan;
  plan.nparts = nparts;

  std::vector<index_t> prev_part;  // finer level's partition
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const Level& lvl = levels[l];
    LevelDecomposition dec;
    dec.nparts = nparts;

    graph::PartitionOptions popt;
    popt.seed = seed + l;

    if (l == 0 && lvl.lines.longest() > 1) {
      // Contract implicit lines so partitions never break them (Fig. 6b).
      std::vector<real_t> weights(lvl.edges.size());
      for (std::size_t e = 0; e < lvl.edges.size(); ++e)
        weights[e] = lvl.edge_length[e] > 0
                         ? norm(lvl.edge_normal[e]) / lvl.edge_length[e]
                         : 0.0;
      const graph::Csr g = graph::Csr::from_weighted_edges(
          lvl.num_nodes, lvl.edges, weights);
      const graph::ContractedGraph cg = graph::contract_lines(g, lvl.lines);
      const auto line_part = graph::partition(cg.graph, nparts, popt);
      dec.part = graph::expand_line_partition(cg, line_part);
    } else {
      const graph::Csr g = graph::Csr::from_edges(lvl.num_nodes, lvl.edges);
      dec.part = graph::partition(g, nparts, popt);
    }

    // Coarse levels: relabel to overlap the finer level's partitions
    // (paper: greedy matching by degree of overlap).
    if (l > 0) {
      dec.part = graph::match_partitions(prev_part, levels[l - 1].to_coarse,
                                         dec.part, nparts);
    }

    // Work statistics.
    std::vector<index_t> count(std::size_t(nparts), 0);
    for (index_t p : dec.part) ++count[std::size_t(p)];
    index_t max_nodes = 0;
    for (index_t c : count) {
      max_nodes = std::max(max_nodes, c);
      if (c == 0) ++dec.empty_parts;
    }
    dec.max_part_nodes = real_t(max_nodes);
    dec.avg_part_nodes = real_t(lvl.num_nodes) / real_t(nparts);

    // Halo statistics: ghosts per part and communication degree.
    std::vector<std::set<index_t>> ghosts(std::size_t(nparts), std::set<index_t>{});
    std::vector<std::set<index_t>> neighbors(std::size_t(nparts), std::set<index_t>{});
    for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
      const auto [a, b] = lvl.edges[e];
      const index_t pa = dec.part[std::size_t(a)];
      const index_t pb = dec.part[std::size_t(b)];
      if (pa == pb) continue;
      ghosts[std::size_t(pa)].insert(b);
      ghosts[std::size_t(pb)].insert(a);
      neighbors[std::size_t(pa)].insert(pb);
      neighbors[std::size_t(pb)].insert(pa);
    }
    for (index_t p = 0; p < nparts; ++p) {
      dec.max_ghost_nodes =
          std::max(dec.max_ghost_nodes, real_t(ghosts[std::size_t(p)].size()));
      dec.total_ghost_nodes += real_t(ghosts[std::size_t(p)].size());
      dec.max_comm_degree = std::max(
          dec.max_comm_degree, index_t(neighbors[std::size_t(p)].size()));
    }

    // Inter-grid transfer statistics to the next coarser level.
    if (l + 1 < levels.size()) {
      // Needs the coarse partition; fill on the next iteration by peeking:
      // store fine part now, compute when the coarse level is done.
    }
    plan.levels.push_back(std::move(dec));
    prev_part = plan.levels.back().part;
  }

  // Inter-grid statistics (fine node -> coarse agglomerate on another part).
  for (std::size_t l = 0; l + 1 < levels.size(); ++l) {
    const Level& fine = levels[l];
    const auto& fpart = plan.levels[l].part;
    const auto& cpart = plan.levels[l + 1].part;
    std::vector<std::set<index_t>> ig_neighbors(std::size_t(nparts), std::set<index_t>{});
    std::vector<real_t> per_part(std::size_t(nparts), 0.0);
    real_t items = 0;
    for (index_t v = 0; v < fine.num_nodes; ++v) {
      const index_t fp = fpart[std::size_t(v)];
      const index_t cp = cpart[std::size_t(fine.to_coarse[std::size_t(v)])];
      if (fp == cp) continue;
      items += 1;
      per_part[std::size_t(fp)] += 1;
      ig_neighbors[std::size_t(fp)].insert(cp);
      ig_neighbors[std::size_t(cp)].insert(fp);
    }
    plan.levels[l].intergrid_items = items;
    for (real_t pp : per_part)
      plan.levels[l].max_intergrid_items =
          std::max(plan.levels[l].max_intergrid_items, pp);
    for (index_t p = 0; p < nparts; ++p)
      plan.levels[l].intergrid_degree =
          std::max(plan.levels[l].intergrid_degree,
                   index_t(ig_neighbors[std::size_t(p)].size()));
  }
  return plan;
}

bool lines_unbroken(const Level& fine, std::span<const index_t> part) {
  for (const auto& line : fine.lines.lines) {
    for (index_t v : line)
      if (part[std::size_t(v)] != part[std::size_t(line[0])]) return false;
  }
  return true;
}

std::vector<State> parallel_residual(const Level& lvl,
                                     const std::vector<State>& u,
                                     const euler::Prim& freestream,
                                     std::span<const index_t> part,
                                     index_t nparts) {
  const std::size_t n = std::size_t(lvl.num_nodes);
  COLUMBIA_REQUIRE(part.size() == n);

  // Edge ownership: the partition of the lower endpoint (a < b).
  // Exchange plan per rank pair.
  struct Exchange {
    std::vector<index_t> send_states;  // my nodes the peer needs
    std::vector<index_t> recv_states;  // peer nodes I need (ghosts)
    std::vector<index_t> send_residuals;  // peer-owned nodes I accumulate
    std::vector<index_t> recv_residuals;  // my nodes peers accumulate
  };
  // plan[p][q] for q != p.
  std::vector<std::map<index_t, Exchange>> plan(std::size_t(nparts),
                                               std::map<index_t, Exchange>{});
  for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
    const auto [a, b] = lvl.edges[e];
    const index_t pa = part[std::size_t(a)];
    const index_t pb = part[std::size_t(b)];
    if (pa == pb) continue;
    // Owner of the edge: pa (a < b by construction).
    // Owner needs b's state from pb, and returns b's residual to pb.
    plan[std::size_t(pa)][pb].recv_states.push_back(b);
    plan[std::size_t(pb)][pa].send_states.push_back(b);
    plan[std::size_t(pa)][pb].send_residuals.push_back(b);
    plan[std::size_t(pb)][pa].recv_residuals.push_back(b);
  }
  // Deduplicate and sort for deterministic packing.
  for (auto& per_rank : plan)
    for (auto& [q, ex] : per_rank) {
      auto dedupe = [](std::vector<index_t>& v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
      };
      dedupe(ex.send_states);
      dedupe(ex.recv_states);
      dedupe(ex.send_residuals);
      dedupe(ex.recv_residuals);
    }

  std::vector<State> result(n, State{});
  smp::Runtime rt{int(nparts)};
  rt.run([&](smp::Comm& comm) {
    const index_t me = index_t(comm.rank());
    // Phase 1: exchange boundary states (packed, one message per neighbor).
    std::vector<State> ghost(n, State{});  // sparse by construction
    for (const auto& [q, ex] : plan[std::size_t(me)]) {
      std::vector<real_t> buf;
      buf.reserve(ex.send_states.size() * 6);
      for (index_t v : ex.send_states)
        for (int c = 0; c < 6; ++c)
          buf.push_back(u[std::size_t(v)][std::size_t(c)]);
      comm.send(int(q), 1, buf);
    }
    for (const auto& [q, ex] : plan[std::size_t(me)]) {
      const std::vector<real_t> buf = comm.recv(int(q), 1);
      COLUMBIA_REQUIRE(buf.size() == ex.recv_states.size() * 6);
      for (std::size_t k = 0; k < ex.recv_states.size(); ++k)
        for (int c = 0; c < 6; ++c)
          ghost[std::size_t(ex.recv_states[k])][std::size_t(c)] =
              buf[k * 6 + std::size_t(c)];
    }

    auto state_of = [&](index_t v) -> const State& {
      return part[std::size_t(v)] == me ? u[std::size_t(v)]
                                        : ghost[std::size_t(v)];
    };
    auto prim_of = [&](index_t v) {
      const State& s = state_of(v);
      const real_t inv = 1.0 / s[0];
      const Vec3 vel{s[1] * inv, s[2] * inv, s[3] * inv};
      const real_t p = (euler::kGamma - 1) * (s[4] - 0.5 * s[0] * dot(vel, vel));
      return euler::Prim{s[0], vel, p};
    };

    // Phase 2: flux accumulation over owned edges (first-order).
    std::vector<State> res(n, State{});
    for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
      const auto [a, b] = lvl.edges[e];
      if (part[std::size_t(a)] != me) continue;  // edge owner rule
      const real_t area = norm(lvl.edge_normal[e]);
      if (area <= 0) continue;
      const Vec3 nh = lvl.edge_normal[e] / area;
      const euler::Prim wl = prim_of(a);
      const euler::Prim wr = prim_of(b);
      const euler::Cons flux =
          euler::numerical_flux(wl, wr, nh, euler::FluxScheme::Roe);
      const real_t mdot = flux[0] * area;
      const real_t nut_l = state_of(a)[5] / wl.rho;
      const real_t nut_r = state_of(b)[5] / wr.rho;
      const real_t fnut = mdot * (mdot >= 0 ? nut_l : nut_r);
      for (int c = 0; c < 5; ++c) {
        res[std::size_t(a)][std::size_t(c)] += area * flux[std::size_t(c)];
        res[std::size_t(b)][std::size_t(c)] -= area * flux[std::size_t(c)];
      }
      res[std::size_t(a)][5] += fnut;
      res[std::size_t(b)][5] -= fnut;
    }
    // Interior edges owned by other ranks but touching my nodes are
    // accumulated remotely and returned below. Boundary closures are
    // node-local:
    for (index_t v = 0; v < index_t(n); ++v) {
      if (part[std::size_t(v)] != me) continue;
      const euler::Prim w = prim_of(v);
      const Vec3& fn =
          lvl.boundary_normal[std::size_t(v)][std::size_t(mesh::BoundaryTag::Farfield)];
      const real_t fa = norm(fn);
      if (fa > 0) {
        const euler::Cons flux = euler::farfield_flux(
            w, freestream, fn / fa, euler::FluxScheme::Roe);
        for (int c = 0; c < 5; ++c)
          res[std::size_t(v)][std::size_t(c)] += fa * flux[std::size_t(c)];
        const real_t mdot = flux[0] * fa;
        res[std::size_t(v)][5] +=
            mdot * (mdot >= 0 ? state_of(v)[5] / w.rho : 0.0);
      }
      for (mesh::BoundaryTag tag :
           {mesh::BoundaryTag::Wall, mesh::BoundaryTag::Symmetry}) {
        const Vec3& bn = lvl.boundary_normal[std::size_t(v)][std::size_t(tag)];
        if (dot(bn, bn) > 0) {
          const euler::Cons flux = euler::wall_flux(w, bn);
          for (int c = 0; c < 5; ++c)
            res[std::size_t(v)][std::size_t(c)] += flux[std::size_t(c)];
        }
      }
    }

    // Phase 3: return ghost-vertex residual contributions to their owners
    // (the packed send of Fig. 6a's accumulate step).
    for (const auto& [q, ex] : plan[std::size_t(me)]) {
      std::vector<real_t> buf;
      buf.reserve(ex.send_residuals.size() * 6);
      for (index_t v : ex.send_residuals)
        for (int c = 0; c < 6; ++c)
          buf.push_back(res[std::size_t(v)][std::size_t(c)]);
      comm.send(int(q), 2, buf);
    }
    for (const auto& [q, ex] : plan[std::size_t(me)]) {
      const std::vector<real_t> buf = comm.recv(int(q), 2);
      COLUMBIA_REQUIRE(buf.size() == ex.recv_residuals.size() * 6);
      for (std::size_t k = 0; k < ex.recv_residuals.size(); ++k)
        for (int c = 0; c < 6; ++c)
          res[std::size_t(ex.recv_residuals[k])][std::size_t(c)] +=
              buf[k * 6 + std::size_t(c)];
    }

    // Publish owned rows (disjoint writes across ranks).
    for (index_t v = 0; v < index_t(n); ++v)
      if (part[std::size_t(v)] == me) result[std::size_t(v)] = res[std::size_t(v)];
  });
  return result;
}

}  // namespace columbia::nsu3d
