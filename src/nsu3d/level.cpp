#include "nsu3d/level.hpp"

#include <cmath>
#include <unordered_map>

#include "graph/agglomerate.hpp"
#include "graph/coloring.hpp"
#include "graph/csr.hpp"
#include "graph/lines.hpp"
#include "mesh/reorder.hpp"
#include "support/assert.hpp"

namespace columbia::nsu3d {

using geom::Vec3;

void Level::build_incident() {
  incident.assign(std::size_t(num_nodes),
                  std::vector<std::pair<index_t, real_t>>{});
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [a, b] = edges[e];
    incident[std::size_t(a)].push_back({index_t(e), +1.0});
    incident[std::size_t(b)].push_back({index_t(e), -1.0});
  }
}

void Level::finalize_edges(bool color) {
  if (color && !edges.empty()) {
    const std::vector<index_t> colors = graph::color_edges(num_nodes, edges);
    graph::ColorOrder order = graph::color_major_order(colors);
    edges = mesh::permuted(edges, order.perm);
    edge_normal = mesh::permuted(edge_normal, order.perm);
    edge_length = mesh::permuted(edge_length, order.perm);
    color_offsets = std::move(order.offsets);
  } else {
    color_offsets = {0, edges.size()};
  }

  edge_area.resize(edges.size());
  edge_unit.resize(edges.size());
  edge_dab.resize(edges.size());
  edge_eps2.resize(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [a, b] = edges[e];
    const real_t area = norm(edge_normal[e]);
    edge_area[e] = area;
    edge_unit[e] = area > 0 ? edge_normal[e] / area : Vec3{};
    edge_dab[e] = 0.5 * (node_center[std::size_t(b)] -
                         node_center[std::size_t(a)]);
    edge_eps2[e] = std::pow(0.3 * edge_length[e], 3);
  }

  // SoA mirrors for the kernel layer.
  const std::size_t ne = edges.size();
  edge_a.resize(ne);
  edge_b.resize(ne);
  edge_nx.resize(ne);
  edge_ny.resize(ne);
  edge_nz.resize(ne);
  edge_ux.resize(ne);
  edge_uy.resize(ne);
  edge_uz.resize(ne);
  edge_dx.resize(ne);
  edge_dy.resize(ne);
  edge_dz.resize(ne);
  edge_geo.resize(ne);
  for (std::size_t e = 0; e < ne; ++e) {
    edge_a[e] = edges[e].first;
    edge_b[e] = edges[e].second;
    edge_nx[e] = edge_normal[e].x;
    edge_ny[e] = edge_normal[e].y;
    edge_nz[e] = edge_normal[e].z;
    edge_ux[e] = edge_unit[e].x;
    edge_uy[e] = edge_unit[e].y;
    edge_uz[e] = edge_unit[e].z;
    edge_dx[e] = edge_dab[e].x;
    edge_dy[e] = edge_dab[e].y;
    edge_dz[e] = edge_dab[e].z;
    edge_geo[e] = (edge_area[e] > 0 && edge_length[e] > 0)
                      ? edge_area[e] / edge_length[e]
                      : 0.0;
  }
  inv_volume.resize(node_volume.size());
  for (std::size_t i = 0; i < node_volume.size(); ++i)
    inv_volume[i] = 1.0 / std::max(node_volume[i], real_t(1e-300));

  build_incident();
  build_line_edges();
}

void Level::build_line_edges() {
  line_edges.assign(lines.lines.size(), {});
  for (std::size_t li = 0; li < lines.lines.size(); ++li) {
    const auto& line = lines.lines[li];
    if (line.empty()) continue;
    auto& le = line_edges[li];
    le.assign(line.size() - 1, {kInvalidIndex, 0.0});
    for (std::size_t k = 0; k + 1 < line.size(); ++k) {
      const index_t i = line[k];
      const index_t j = line[k + 1];
      for (const auto& [eid, sgn] : incident[std::size_t(i)]) {
        const auto [ea, eb] = edges[std::size_t(eid)];
        const index_t other = ea == i ? eb : ea;
        if (other != j) continue;
        le[k] = {eid, sgn};
        break;
      }
    }
  }
}

namespace {

/// Assigns line bookkeeping (line_of_node / pos_in_line) from lines.
void index_lines(Level& lvl) {
  lvl.line_of_node.assign(std::size_t(lvl.num_nodes), kInvalidIndex);
  lvl.pos_in_line.assign(std::size_t(lvl.num_nodes), 0);
  for (std::size_t li = 0; li < lvl.lines.lines.size(); ++li) {
    const auto& line = lvl.lines.lines[li];
    for (std::size_t k = 0; k < line.size(); ++k) {
      lvl.line_of_node[std::size_t(line[k])] = index_t(li);
      lvl.pos_in_line[std::size_t(line[k])] = index_t(k);
    }
  }
}

/// Coarse level from a fine level via agglomeration of the coupling graph.
Level coarsen(Level& fine, bool color_edges) {
  // Coupling weights |n|/len seed the agglomeration priority so strongly
  // coupled (boundary-layer) regions agglomerate along their stiffness.
  std::vector<real_t> weights(fine.edges.size());
  for (std::size_t e = 0; e < fine.edges.size(); ++e)
    weights[e] = fine.edge_length[e] > 0
                     ? norm(fine.edge_normal[e]) / fine.edge_length[e]
                     : 0.0;
  graph::Csr g = graph::Csr::from_weighted_edges(fine.num_nodes, fine.edges,
                                                 weights);
  const graph::Agglomeration agg = graph::agglomerate(g);
  fine.to_coarse = agg.fine_to_coarse;

  Level coarse;
  coarse.num_nodes = agg.coarse.num_vertices();
  coarse.node_volume.assign(std::size_t(coarse.num_nodes), 0.0);
  coarse.node_center.assign(std::size_t(coarse.num_nodes), Vec3{});
  coarse.boundary_normal.assign(std::size_t(coarse.num_nodes), {});
  coarse.wall_distance.assign(std::size_t(coarse.num_nodes), 0.0);

  for (index_t v = 0; v < fine.num_nodes; ++v) {
    const std::size_t c = std::size_t(fine.to_coarse[std::size_t(v)]);
    const real_t vol = fine.node_volume[std::size_t(v)];
    coarse.node_volume[c] += vol;
    coarse.node_center[c] += vol * fine.node_center[std::size_t(v)];
    coarse.wall_distance[c] += vol * fine.wall_distance[std::size_t(v)];
    for (int t = 0; t < 3; ++t)
      coarse.boundary_normal[c][std::size_t(t)] +=
          fine.boundary_normal[std::size_t(v)][std::size_t(t)];
  }
  for (index_t c = 0; c < coarse.num_nodes; ++c) {
    const real_t vol = coarse.node_volume[std::size_t(c)];
    if (vol > 0) {
      coarse.node_center[std::size_t(c)] =
          coarse.node_center[std::size_t(c)] / vol;
      coarse.wall_distance[std::size_t(c)] /= vol;
    }
  }

  // Coarse edges: accumulate fine dual-face normals across agglomerates.
  std::unordered_map<std::uint64_t, std::size_t> edge_of;
  for (std::size_t e = 0; e < fine.edges.size(); ++e) {
    const auto [a, b] = fine.edges[e];
    const index_t ca = fine.to_coarse[std::size_t(a)];
    const index_t cb = fine.to_coarse[std::size_t(b)];
    if (ca == cb) continue;
    const index_t lo = std::min(ca, cb), hi = std::max(ca, cb);
    const std::uint64_t key =
        (std::uint64_t(std::uint32_t(lo)) << 32) | std::uint32_t(hi);
    auto [it, inserted] = edge_of.emplace(key, coarse.edges.size());
    if (inserted) {
      coarse.edges.emplace_back(lo, hi);
      coarse.edge_normal.push_back({});
    }
    // Fine normal oriented a -> b; coarse edge oriented lo -> hi.
    const real_t sign = (ca == lo) == (a < b) ? 1.0 : -1.0;
    coarse.edge_normal[it->second] += sign * fine.edge_normal[e];
  }
  coarse.edge_length.resize(coarse.edges.size());
  for (std::size_t e = 0; e < coarse.edges.size(); ++e) {
    const auto [a, b] = coarse.edges[e];
    coarse.edge_length[e] = distance(coarse.node_center[std::size_t(a)],
                                     coarse.node_center[std::size_t(b)]);
  }

  // Line-implicit smoothing continues on coarse levels: extract lines from
  // the agglomerated coupling graph ("line-implicit driven agglomeration
  // multigrid", paper Sec. III). Where anisotropy has died out the lines
  // reduce to single points and the smoother becomes point-implicit.
  {
    std::vector<real_t> cw(coarse.edges.size());
    for (std::size_t e = 0; e < coarse.edges.size(); ++e)
      cw[e] = coarse.edge_length[e] > 0
                  ? norm(coarse.edge_normal[e]) / coarse.edge_length[e]
                  : 0.0;
    const graph::Csr cg = graph::Csr::from_weighted_edges(
        coarse.num_nodes, coarse.edges, cw);
    graph::LineOptions lo;
    coarse.lines = graph::extract_lines(cg, lo);
  }
  index_lines(coarse);
  coarse.finalize_edges(color_edges);
  return coarse;
}

}  // namespace

std::vector<Level> build_levels(const mesh::UnstructuredMesh& m,
                                const LevelOptions& opt) {
  COLUMBIA_REQUIRE(opt.num_levels >= 1);
  const mesh::DualMetrics dm = mesh::compute_dual_metrics(m);

  std::vector<Level> levels;
  Level fine;
  fine.num_nodes = m.num_points();
  fine.edges = dm.edges;
  fine.edge_normal = dm.edge_normal;
  fine.node_volume = dm.node_volume;
  fine.node_center = std::vector<Vec3>(m.points.begin(), m.points.end());
  fine.boundary_normal = dm.boundary_normal;
  fine.wall_distance = dm.wall_distance;
  fine.edge_length.resize(fine.edges.size());
  for (std::size_t e = 0; e < fine.edges.size(); ++e) {
    const auto [a, b] = fine.edges[e];
    fine.edge_length[e] =
        distance(m.points[std::size_t(a)], m.points[std::size_t(b)]);
  }

  // Implicit lines from the coupling-weighted graph (paper Fig. 5).
  {
    const std::vector<real_t> coupling = dm.edge_coupling(m);
    const graph::Csr g = graph::Csr::from_weighted_edges(
        fine.num_nodes, fine.edges, coupling);
    graph::LineOptions lo;
    lo.anisotropy_threshold = opt.line_threshold;
    fine.lines = graph::extract_lines(g, lo);
  }
  index_lines(fine);
  fine.finalize_edges(opt.color_edges);
  levels.push_back(std::move(fine));

  for (int l = 1; l < opt.num_levels; ++l) {
    Level coarse = coarsen(levels.back(), opt.color_edges);
    if (coarse.num_nodes >= levels.back().num_nodes) break;
    levels.push_back(std::move(coarse));
    if (levels.back().num_nodes <= 4) break;
  }
  return levels;
}

}  // namespace columbia::nsu3d
