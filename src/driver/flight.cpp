#include "driver/flight.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace columbia::driver {

namespace {

/// Index of the interval containing x in the sorted axis (clamped).
std::size_t bracket(const std::vector<real_t>& axis, real_t x, real_t& t) {
  if (axis.size() == 1) {
    t = 0;
    return 0;
  }
  std::size_t i = 0;
  while (i + 2 < axis.size() && x > axis[i + 1]) ++i;
  const real_t lo = axis[i], hi = axis[i + 1];
  t = hi > lo ? std::clamp((x - lo) / (hi - lo), real_t(0), real_t(1))
              : real_t(0);
  return i;
}

}  // namespace

AeroDatabase::AeroDatabase(const DatabaseSpec& spec,
                           std::span<const CaseResult> results)
    : deflections_(spec.deflections),
      machs_(spec.machs),
      alphas_(spec.alphas_deg) {
  COLUMBIA_REQUIRE(spec.betas_deg.size() == 1);
  COLUMBIA_REQUIRE(std::is_sorted(deflections_.begin(), deflections_.end()));
  COLUMBIA_REQUIRE(std::is_sorted(machs_.begin(), machs_.end()));
  COLUMBIA_REQUIRE(std::is_sorted(alphas_.begin(), alphas_.end()));
  const std::size_t expected =
      deflections_.size() * machs_.size() * alphas_.size();
  COLUMBIA_REQUIRE(results.size() == expected);
  cl_.resize(expected);
  cd_.resize(expected);
  // DatabaseFill orders results by (deflection, mach, alpha, beta).
  for (std::size_t k = 0; k < expected; ++k) {
    cl_[k] = results[k].cl;
    cd_[k] = results[k].cd;
  }
}

real_t AeroDatabase::interp(const std::vector<real_t>& table, real_t d,
                            real_t m, real_t a) const {
  real_t td, tm, ta;
  const std::size_t id = bracket(deflections_, d, td);
  const std::size_t im = bracket(machs_, m, tm);
  const std::size_t ia = bracket(alphas_, a, ta);
  const std::size_t nm = machs_.size(), na = alphas_.size();
  auto at = [&](std::size_t i, std::size_t j, std::size_t k) {
    i = std::min(i, deflections_.size() - 1);
    j = std::min(j, nm - 1);
    k = std::min(k, na - 1);
    return table[(i * nm + j) * na + k];
  };
  real_t acc = 0;
  for (int bi = 0; bi < 2; ++bi)
    for (int bj = 0; bj < 2; ++bj)
      for (int bk = 0; bk < 2; ++bk) {
        const real_t w = (bi ? td : 1 - td) * (bj ? tm : 1 - tm) *
                         (bk ? ta : 1 - ta);
        if (w == 0) continue;
        acc += w * at(id + std::size_t(bi), im + std::size_t(bj),
                      ia + std::size_t(bk));
      }
  return acc;
}

real_t AeroDatabase::cl(real_t d, real_t m, real_t a) const {
  return interp(cl_, d, m, a);
}
real_t AeroDatabase::cd(real_t d, real_t m, real_t a) const {
  return interp(cd_, d, m, a);
}

TrimResult trim_alpha_checked(const AeroDatabase& db, real_t deflection,
                              real_t mach, real_t target_cl) {
  real_t lo = db.alphas().front();
  real_t hi = db.alphas().back();
  const real_t cl_at_lo = db.cl(deflection, mach, lo);
  const real_t cl_at_hi = db.cl(deflection, mach, hi);

  TrimResult out;
  out.cl_lo = std::min(cl_at_lo, cl_at_hi);
  out.cl_hi = std::max(cl_at_lo, cl_at_hi);
  // Unreachable target: report the saturation instead of hiding it behind
  // a clamped angle that flies a different CL than requested.
  out.in_range = target_cl >= out.cl_lo && target_cl <= out.cl_hi;

  // CL is monotone in alpha over sane databases; bisect, saturate otherwise.
  const bool increasing = cl_at_hi >= cl_at_lo;
  for (int it = 0; it < 60; ++it) {
    const real_t mid = 0.5 * (lo + hi);
    const real_t c = db.cl(deflection, mach, mid);
    if ((c < target_cl) == increasing)
      lo = mid;
    else
      hi = mid;
  }
  out.alpha_deg = 0.5 * (lo + hi);
  out.achieved_cl = db.cl(deflection, mach, out.alpha_deg);
  return out;
}

real_t trim_alpha(const AeroDatabase& db, real_t deflection, real_t mach,
                  real_t target_cl) {
  return trim_alpha_checked(db, deflection, mach, target_cl).alpha_deg;
}

std::vector<FlightState> fly_longitudinal(const AeroDatabase& db,
                                          const FlightSpec& spec,
                                          FlightState state) {
  COLUMBIA_REQUIRE(spec.steps >= 1 && spec.dt > 0);
  constexpr real_t kG = 9.80665;
  std::vector<FlightState> traj{state};
  for (int s = 0; s < spec.steps; ++s) {
    state.mach = state.velocity / spec.sound_speed;
    state.alpha_deg = trim_alpha(db, spec.deflection, state.mach,
                                 spec.target_cl);
    const real_t q =
        0.5 * spec.air_density * state.velocity * state.velocity;
    const real_t lift = q * spec.reference_area *
                        db.cl(spec.deflection, state.mach, state.alpha_deg);
    const real_t drag = q * spec.reference_area *
                        db.cd(spec.deflection, state.mach, state.alpha_deg);
    // Point-mass longitudinal dynamics.
    const real_t vdot =
        (spec.thrust - drag) / spec.mass - kG * std::sin(state.gamma);
    const real_t gdot =
        (lift - spec.mass * kG * std::cos(state.gamma)) /
        (spec.mass * std::max(state.velocity, real_t(1.0)));
    state.velocity = std::max(real_t(1.0), state.velocity + spec.dt * vdot);
    state.gamma += spec.dt * gdot;
    state.altitude += spec.dt * state.velocity * std::sin(state.gamma);
    state.range += spec.dt * state.velocity * std::cos(state.gamma);
    state.time += spec.dt;
    traj.push_back(state);
  }
  return traj;
}

}  // namespace columbia::driver
