// Flying the vehicle through the aero-performance database.
//
// Paper Sec. I: "when coupled with a six-degree-of-freedom (6-DOF)
// integrator, the vehicle can be 'flown' through the database by guidance
// and control system designers to explore issues of stability and
// control". This module provides that consumer side: a queryable
// interpolated database built from DatabaseFill results, a longitudinal
// trim solver, and a point-mass longitudinal flight integrator (the
// pitch-plane subset of the 6-DOF).
#pragma once

#include <vector>

#include "driver/database.hpp"

namespace columbia::driver {

/// Trilinearly-interpolated aero database over the (deflection, Mach,
/// alpha) tensor grid produced by DatabaseFill (beta must be a single
/// value). Queries clamp to the grid hull.
class AeroDatabase {
 public:
  /// `results` must be the exact output of DatabaseFill::run() for `spec`.
  AeroDatabase(const DatabaseSpec& spec, std::span<const CaseResult> results);

  real_t cl(real_t deflection, real_t mach, real_t alpha_deg) const;
  real_t cd(real_t deflection, real_t mach, real_t alpha_deg) const;

  std::span<const real_t> deflections() const { return deflections_; }
  std::span<const real_t> machs() const { return machs_; }
  std::span<const real_t> alphas() const { return alphas_; }

 private:
  std::vector<real_t> deflections_, machs_, alphas_;
  std::vector<real_t> cl_, cd_;  // [d][m][a] row-major

  real_t interp(const std::vector<real_t>& table, real_t d, real_t m,
                real_t a) const;
};

/// Outcome of a trim solve. When the requested CL lies outside what the
/// database can deliver over its alpha range, `in_range` is false and
/// `alpha_deg` sits at the saturated endpoint: the caller decides whether
/// a saturated control is acceptable instead of flying a silently wrong
/// trim. `cl_lo`/`cl_hi` report the achievable CL envelope at this
/// (deflection, Mach) so the error can be diagnosed without re-querying.
struct TrimResult {
  real_t alpha_deg = 0;
  real_t achieved_cl = 0;
  bool in_range = true;
  real_t cl_lo = 0, cl_hi = 0;
};

/// Angle of attack that achieves `target_cl` at the given Mach and
/// deflection (bisection over the database's alpha range), with explicit
/// flagging of unreachable targets.
TrimResult trim_alpha_checked(const AeroDatabase& db, real_t deflection,
                              real_t mach, real_t target_cl);

/// Convenience wrapper returning only the (possibly saturated) angle.
real_t trim_alpha(const AeroDatabase& db, real_t deflection, real_t mach,
                  real_t target_cl);

/// Point-mass longitudinal flight state (pitch plane of the 6-DOF).
struct FlightState {
  real_t time = 0;
  real_t velocity = 250;    // m/s
  real_t gamma = 0;         // flight-path angle, rad
  real_t altitude = 10000;  // m
  real_t range = 0;         // m
  real_t alpha_deg = 0;
  real_t mach = 0.75;
};

struct FlightSpec {
  real_t mass = 60000;           // kg
  real_t reference_area = 120;   // m^2
  real_t thrust = 1.2e5;         // N, constant
  real_t deflection = 0;         // control setting during the segment
  real_t target_cl = 0.5;        // G&C holds lift via trim each step
  real_t dt = 0.5;               // s
  int steps = 120;
  real_t sound_speed = 300;      // m/s (constant-atmosphere approximation)
  real_t air_density = 0.41;     // kg/m^3 at ~10 km
};

/// Integrates the longitudinal equations of motion, trimming alpha against
/// the database at every step. Returns the trajectory including the start.
std::vector<FlightState> fly_longitudinal(const AeroDatabase& db,
                                          const FlightSpec& spec,
                                          FlightState initial = {});

}  // namespace columbia::driver
