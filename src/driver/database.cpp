#include "driver/database.hpp"

#include <atomic>
#include <thread>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace columbia::driver {

DatabaseFill::DatabaseFill(DatabaseSpec spec) : spec_(std::move(spec)) {
  COLUMBIA_REQUIRE(!spec_.deflections.empty());
  COLUMBIA_REQUIRE(!spec_.machs.empty());
  COLUMBIA_REQUIRE(!spec_.alphas_deg.empty());
  COLUMBIA_REQUIRE(!spec_.betas_deg.empty());
  COLUMBIA_REQUIRE(spec_.simultaneous_cases >= 1);
}

std::vector<CaseResult> DatabaseFill::run() {
  std::vector<CaseResult> results;
  results.reserve(std::size_t(num_cases()));

  for (real_t defl : spec_.deflections) {
    // Top of the job hierarchy: one geometry instance. Surface preparation
    // and mesh generation are paid once per instance and amortized over
    // every wind point below it (paper Sec. IV).
    WallTimer mesh_timer;
    obs::SpanGuard mesh_span("driver.mesh_gen");
    const geom::TriSurface surface = spec_.geometry(defl);
    geom::Aabb domain = spec_.domain;
    if (!domain.valid()) {
      domain = surface.bounds();
      const geom::Vec3 pad = 1.5 * (domain.hi - domain.lo);
      domain.lo -= pad;
      domain.hi += pad;
    }
    const cartesian::CartMesh mesh =
        cartesian::build_cart_mesh(surface, domain, spec_.mesh_options);
    mesh_span.close();
    stats_.mesh_gen_seconds += mesh_timer.seconds();
    stats_.meshes_generated += 1;
    stats_.total_cells_meshed += double(mesh.num_cells());
    OBS_COUNT("driver.meshes", 1);
    OBS_COUNT("driver.cells_meshed", mesh.num_cells());

    // Wind-space sweep on this instance, simultaneous_cases at a time.
    std::vector<WindPoint> winds;
    for (real_t m : spec_.machs)
      for (real_t a : spec_.alphas_deg)
        for (real_t b : spec_.betas_deg) winds.push_back({m, a, b});

    std::vector<CaseResult> batch(winds.size());
    WallTimer solve_timer;
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      while (true) {
        const std::size_t k = next.fetch_add(1);
        if (k >= winds.size()) break;
        OBS_SPAN("driver.case", "case", std::int64_t(k));
        OBS_COUNT("driver.cases", 1);
        const WindPoint& wp = winds[k];
        euler::FlowConditions fc;
        fc.mach = wp.mach;
        fc.alpha_deg = wp.alpha_deg;
        fc.beta_deg = wp.beta_deg;
        cart3d::Cart3DSolver solver(mesh, fc, spec_.solver_options);
        const auto hist =
            solver.solve(spec_.max_cycles, spec_.convergence_orders);
        const cart3d::Forces f = solver.integrate_forces();
        CaseResult r;
        r.deflection_rad = defl;
        r.wind = wp;
        r.cl = f.cl;
        r.cd = f.cd;
        r.cycles = int(hist.size()) - 1;
        r.residual_drop = hist.front() > 0 ? hist.back() / hist.front() : 0;
        batch[k] = r;
      }
    };
    std::vector<std::thread> pool;
    const int nw = std::min<int>(spec_.simultaneous_cases, int(winds.size()));
    for (int t = 0; t < nw; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    stats_.solve_seconds += solve_timer.seconds();
    stats_.cases_run += int(winds.size());

    results.insert(results.end(), batch.begin(), batch.end());
  }
  return results;
}

}  // namespace columbia::driver
