#include "driver/database.hpp"

#include <atomic>
#include <exception>
#include <memory>
#include <thread>

#include "obs/obs.hpp"
#include "resil/faults.hpp"
#include "resil/manifest.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace columbia::driver {

namespace {

CaseStatus case_status_from_name(const std::string& s) {
  if (s == "recovered") return CaseStatus::Recovered;
  if (s == "degraded") return CaseStatus::Degraded;
  if (s == "failed") return CaseStatus::Failed;
  return CaseStatus::Ok;
}

}  // namespace

const char* case_status_name(CaseStatus s) {
  switch (s) {
    case CaseStatus::Ok: return "ok";
    case CaseStatus::Recovered: return "recovered";
    case CaseStatus::Degraded: return "degraded";
    case CaseStatus::Failed: return "failed";
  }
  return "?";
}

DatabaseFill::DatabaseFill(DatabaseSpec spec) : spec_(std::move(spec)) {
  COLUMBIA_REQUIRE(!spec_.deflections.empty());
  COLUMBIA_REQUIRE(!spec_.machs.empty());
  COLUMBIA_REQUIRE(!spec_.alphas_deg.empty());
  COLUMBIA_REQUIRE(!spec_.betas_deg.empty());
  COLUMBIA_REQUIRE(spec_.simultaneous_cases >= 1);
  COLUMBIA_REQUIRE(spec_.case_retries >= 0);
}

std::vector<CaseResult> DatabaseFill::run() {
  std::vector<CaseResult> results;
  results.reserve(std::size_t(num_cases()));

  std::unique_ptr<resil::SweepManifest> manifest;
  if (!spec_.manifest_path.empty())
    manifest = std::make_unique<resil::SweepManifest>(spec_.manifest_path);

  const std::size_t winds_per_defl =
      spec_.machs.size() * spec_.alphas_deg.size() * spec_.betas_deg.size();

  for (std::size_t di = 0; di < spec_.deflections.size(); ++di) {
    const real_t defl = spec_.deflections[di];
    // Top of the job hierarchy: one geometry instance. Surface preparation
    // and mesh generation are paid once per instance and amortized over
    // every wind point below it (paper Sec. IV).
    WallTimer mesh_timer;
    obs::SpanGuard mesh_span("driver.mesh_gen");
    const geom::TriSurface surface = spec_.geometry(defl);
    geom::Aabb domain = spec_.domain;
    if (!domain.valid()) {
      domain = surface.bounds();
      const geom::Vec3 pad = 1.5 * (domain.hi - domain.lo);
      domain.lo -= pad;
      domain.hi += pad;
    }
    const cartesian::CartMesh mesh =
        cartesian::build_cart_mesh(surface, domain, spec_.mesh_options);
    mesh_span.close();
    stats_.mesh_gen_seconds += mesh_timer.seconds();
    stats_.meshes_generated += 1;
    stats_.total_cells_meshed += double(mesh.num_cells());
    OBS_COUNT("driver.meshes", 1);
    OBS_COUNT("driver.cells_meshed", mesh.num_cells());

    // Wind-space sweep on this instance, simultaneous_cases at a time.
    std::vector<WindPoint> winds;
    for (real_t m : spec_.machs)
      for (real_t a : spec_.alphas_deg)
        for (real_t b : spec_.betas_deg) winds.push_back({m, a, b});

    std::vector<CaseResult> batch(winds.size());
    WallTimer solve_timer;
    std::atomic<std::size_t> next{0};

    // One guarded solver run; throws when the injector crashes the worker
    // (FaultKind::CaseThrow) or the solver rejects the configuration.
    auto solve_once = [&](const WindPoint& wp,
                          const cart3d::SolverOptions& sopt,
                          std::uint64_t site) {
      resil::FaultInjector::global().maybe_throw(resil::FaultKind::CaseThrow,
                                                 site);
      euler::FlowConditions fc;
      fc.mach = wp.mach;
      fc.alpha_deg = wp.alpha_deg;
      fc.beta_deg = wp.beta_deg;
      cart3d::Cart3DSolver solver(mesh, fc, sopt);
      resil::GuardedSolveOptions gopt;
      gopt.guard = spec_.guard;
      const resil::GuardedSolveResult gr = solver.solve_guarded(
          spec_.max_cycles, spec_.convergence_orders, gopt);
      return std::make_pair(gr, solver.integrate_forces());
    };

    auto fill_result = [](CaseResult& r, const resil::GuardedSolveResult& gr,
                          const cart3d::Forces& f) {
      const auto& hist = gr.history;
      r.cl = f.cl;
      r.cd = f.cd;
      r.cycles = int(hist.size()) - 1;
      r.residual_drop = hist.front() > 0 ? hist.back() / hist.front() : 0;
    };

    auto worker = [&] {
      while (true) {
        const std::size_t k = next.fetch_add(1);
        if (k >= winds.size()) break;
        OBS_SPAN("driver.case", "case", std::int64_t(k));
        const WindPoint& wp = winds[k];
        // Stable global case id: deflection-major, the same across re-runs
        // of the same spec, so manifest entries address the right case.
        const std::uint64_t id = di * winds_per_defl + k;

        CaseResult r;
        r.deflection_rad = defl;
        r.wind = wp;

        if (manifest) {
          if (const resil::ManifestEntry* e = manifest->find(id)) {
            r.status = case_status_from_name(e->status);
            r.cl = real_t(e->values[0]);
            r.cd = real_t(e->values[1]);
            r.residual_drop = real_t(e->values[2]);
            r.cycles = int(e->values[3]);
            r.attempts = int(e->values[4]);
            r.from_manifest = true;
            batch[k] = r;
            OBS_COUNT("resil.case.skipped", 1);
            continue;
          }
        }
        OBS_COUNT("driver.cases", 1);

        // Recovery ladder: full-configuration attempts (the guarded solve
        // already rolls back transient divergence internally), then one
        // degraded re-run, then Failed. A crashed worker never takes the
        // sweep down — the exception is contained to this case.
        CaseStatus status = CaseStatus::Failed;
        int attempts = 0;
        const int full_attempts = 1 + spec_.case_retries;
        for (int a = 0; a < full_attempts && status == CaseStatus::Failed;
             ++a) {
          ++attempts;
          try {
            const auto [gr, f] = solve_once(wp, spec_.solver_options,
                                            id * 8 + std::uint64_t(a));
            if (gr.outcome != resil::SolveOutcome::Failed) {
              // A rollback inside the solve or a repeat attempt both count
              // as recovered: the case finished at full fidelity, but not
              // on the first clean try.
              status = (gr.outcome == resil::SolveOutcome::Recovered ||
                        a > 0)
                           ? CaseStatus::Recovered
                           : CaseStatus::Ok;
              fill_result(r, gr, f);
            } else {
              OBS_COUNT("resil.case.diverged", 1);
            }
          } catch (const std::exception&) {
            OBS_COUNT("resil.case.crashed", 1);
          }
        }
        if (status == CaseStatus::Failed && spec_.allow_degraded) {
          cart3d::SolverOptions degraded = spec_.solver_options;
          degraded.mg_levels = 1;
          degraded.second_order = false;
          degraded.cfl *= 0.5;
          ++attempts;
          try {
            const auto [gr, f] = solve_once(wp, degraded, id * 8 + 7);
            if (gr.outcome != resil::SolveOutcome::Failed) {
              status = CaseStatus::Degraded;
              fill_result(r, gr, f);
            }
          } catch (const std::exception&) {
            OBS_COUNT("resil.case.crashed", 1);
          }
        }
        r.status = status;
        r.attempts = attempts;
        batch[k] = r;
        OBS_COUNT(status == CaseStatus::Ok          ? "resil.case.ok"
                  : status == CaseStatus::Recovered ? "resil.case.recovered"
                  : status == CaseStatus::Degraded  ? "resil.case.degraded"
                                                    : "resil.case.failed",
                  1);
        if (manifest)
          manifest->record({id,
                            case_status_name(status),
                            {double(r.cl), double(r.cd),
                             double(r.residual_drop), double(r.cycles),
                             double(r.attempts), double(defl)}});
      }
    };
    std::vector<std::thread> pool;
    const int nw = std::min<int>(spec_.simultaneous_cases, int(winds.size()));
    for (int t = 0; t < nw; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    stats_.solve_seconds += solve_timer.seconds();

    // Outcome accounting happens after the join — stats_ is not touched
    // from worker threads.
    for (const CaseResult& r : batch) {
      if (r.from_manifest) {
        stats_.cases_skipped += 1;
        continue;
      }
      stats_.cases_run += 1;
      switch (r.status) {
        case CaseStatus::Recovered: stats_.cases_recovered += 1; break;
        case CaseStatus::Degraded: stats_.cases_degraded += 1; break;
        case CaseStatus::Failed: stats_.cases_failed += 1; break;
        case CaseStatus::Ok: break;
      }
    }

    results.insert(results.end(), batch.begin(), batch.end());
  }
  return results;
}

}  // namespace columbia::driver
