// Variable-fidelity analysis campaign — the paper's top-level workflow.
//
// "Our approach ... relies on the use of a variable fidelity model, where a
// high fidelity model which solves the Reynolds-averaged Navier-Stokes
// equations (NSU3D) is used to perform the analysis at the most important
// flight conditions ... and a lower fidelity model based on inviscid flow
// analysis on adapted Cartesian meshes (Cart3D) is used to validate the new
// design over a broad range of flight conditions" (paper Sec. I).
//
// This facade is the library's primary public entry point: one call runs
// the RANS anchor points and the inviscid database sweep and returns both.
#pragma once

#include "driver/database.hpp"
#include "mesh/builders.hpp"
#include "nsu3d/solver.hpp"

namespace columbia::driver {

struct AnchorResult {
  WindPoint wind;
  real_t cl = 0, cd = 0;
  real_t residual_drop = 0;
  int cycles = 0;
};

struct CampaignSpec {
  /// High-fidelity anchor points (RANS, NSU3D).
  std::vector<WindPoint> anchor_points{{0.75, 0.0, 0.0}};
  mesh::WingMeshSpec wing_mesh;
  nsu3d::Nsu3dOptions nsu3d_options;
  int nsu3d_max_cycles = 60;
  real_t reynolds = 3.0e6;

  /// Broad-envelope database (inviscid, Cart3D).
  DatabaseSpec database;
};

struct CampaignResult {
  std::vector<AnchorResult> anchors;     // high-fidelity results
  std::vector<CaseResult> database;      // envelope sweep
  DatabaseStats database_stats;
};

/// Runs the full variable-fidelity campaign.
CampaignResult run_campaign(const CampaignSpec& spec);

}  // namespace columbia::driver
