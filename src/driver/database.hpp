// Automated aero-performance database generation (paper Sec. IV).
//
// The paper's parametric studies sweep Configuration-Space (control surface
// deflections) x Wind-Space (Mach, angle-of-attack, sideslip). Job control
// is hierarchical: geometry instances sit at the top with wind points
// below, so surface triangulation and mesh generation are amortized over
// the hundreds of wind-space runs on each geometry instance; independent
// cases run simultaneously, as many as memory permits.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "cart3d/solver.hpp"
#include "cartesian/cart_mesh.hpp"
#include "geom/components.hpp"
#include "resil/guard.hpp"
#include "support/types.hpp"

namespace columbia::driver {

struct WindPoint {
  real_t mach;
  real_t alpha_deg;
  real_t beta_deg;
};

/// How a case finished. A multi-day sweep must survive individual bad
/// cases: a crash or divergence is retried, then re-run in a heavily
/// dissipative degraded configuration, and only then recorded as failed —
/// the sweep always completes with a per-case verdict.
enum class CaseStatus { Ok, Recovered, Degraded, Failed };
const char* case_status_name(CaseStatus s);

struct CaseResult {
  real_t deflection_rad;
  WindPoint wind;
  real_t cl = 0, cd = 0;
  real_t residual_drop = 0;  // final/initial residual
  int cycles = 0;
  CaseStatus status = CaseStatus::Ok;
  int attempts = 1;          // solver runs spent on this case
  bool from_manifest = false;  // reloaded from a previous sweep's manifest
};

struct DatabaseSpec {
  /// Configuration space: elevon deflections (radians).
  std::vector<real_t> deflections{0.0};
  /// Wind space axes (full tensor product is run).
  std::vector<real_t> machs{0.8};
  std::vector<real_t> alphas_deg{0.0};
  std::vector<real_t> betas_deg{0.0};

  /// Geometry factory per deflection; defaults to the SSLV assembly.
  std::function<geom::TriSurface(real_t)> geometry =
      [](real_t d) { return geom::make_sslv(d, 1); };
  geom::Aabb domain;  // defaults to geometry bounds padded 4x if invalid

  cartesian::CartMeshOptions mesh_options;
  cart3d::SolverOptions solver_options;
  int max_cycles = 30;
  real_t convergence_orders = 2;
  /// Cases run simultaneously (paper: "as many cases ... as memory
  /// permits"); maps to worker threads here.
  int simultaneous_cases = 4;

  // --- Resilience ----------------------------------------------------------
  /// Guard settings for each case's solve (divergence rollback + backoff).
  resil::GuardOptions guard;
  /// Extra full-configuration re-runs after a crashed or diverged case.
  int case_retries = 1;
  /// After the retry budget, re-run once on a single grid, first order,
  /// at half CFL and record the case as Degraded instead of Failed.
  bool allow_degraded = true;
  /// Sweep manifest file; empty disables durable resume. Cases found in
  /// the manifest are skipped and their recorded results reused, so a
  /// killed sweep restarted with the same spec continues where it died.
  std::string manifest_path;
};

struct DatabaseStats {
  int meshes_generated = 0;
  int cases_run = 0;
  int cases_recovered = 0;  // finished after in-solve rollback or re-run
  int cases_degraded = 0;   // finished only in the degraded configuration
  int cases_failed = 0;     // exhausted every recovery path
  int cases_skipped = 0;    // reloaded from the sweep manifest
  double mesh_gen_seconds = 0;
  double solve_seconds = 0;
  double total_cells_meshed = 0;

  double cells_per_minute() const {
    return mesh_gen_seconds > 0 ? total_cells_meshed / mesh_gen_seconds * 60
                                : 0;
  }
};

class DatabaseFill {
 public:
  explicit DatabaseFill(DatabaseSpec spec);

  /// Runs the whole database: one mesh per geometry instance, all wind
  /// points on that mesh, `simultaneous_cases` cases in flight at a time.
  /// Results are ordered by (deflection, mach, alpha, beta).
  std::vector<CaseResult> run();

  const DatabaseStats& stats() const { return stats_; }

  index_t num_cases() const {
    return index_t(spec_.deflections.size() * spec_.machs.size() *
                   spec_.alphas_deg.size() * spec_.betas_deg.size());
  }

 private:
  DatabaseSpec spec_;
  DatabaseStats stats_;
};

}  // namespace columbia::driver
