#include "driver/variable_fidelity.hpp"

namespace columbia::driver {

CampaignResult run_campaign(const CampaignSpec& spec) {
  CampaignResult out;

  // High-fidelity anchors: RANS solutions on the hybrid viscous mesh.
  const mesh::UnstructuredMesh wing = mesh::make_wing_mesh(spec.wing_mesh);
  for (const WindPoint& wp : spec.anchor_points) {
    euler::FlowConditions fc;
    fc.mach = wp.mach;
    fc.alpha_deg = wp.alpha_deg;
    fc.beta_deg = wp.beta_deg;
    fc.reynolds = spec.reynolds;
    nsu3d::Nsu3dSolver solver(wing, fc, spec.nsu3d_options);
    const auto hist = solver.solve(spec.nsu3d_max_cycles);
    const nsu3d::Forces f = solver.integrate_forces();
    AnchorResult r;
    r.wind = wp;
    r.cl = f.cl;
    r.cd = f.cd;
    r.cycles = int(hist.size()) - 1;
    r.residual_drop = hist.front() > 0 ? hist.back() / hist.front() : 0;
    out.anchors.push_back(r);
  }

  // Envelope sweep: inviscid database fill.
  DatabaseFill fill(spec.database);
  out.database = fill.run();
  out.database_stats = fill.stats();
  return out;
}

}  // namespace columbia::driver
